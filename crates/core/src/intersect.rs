//! Positional intersection counting between batmaps (§II, Fig. 1).
//!
//! Equal widths: compare slot `p` against slot `p` for every `p` — a
//! single word-wise sweep.
//!
//! Different widths: the interleaved block layout of §III-A (Fig. 4) is
//! chosen precisely so folding `mod rᵢ` becomes *chunk wrap-around*: the
//! larger batmap is an array of `|Bᵢ|`-byte chunks, each compared
//! against the whole smaller batmap. (Block `g` of `Bⱼ` maps to block
//! `g mod (rᵢ/r₀)` of `Bᵢ` with identical within-block offsets, and
//! blocks are laid out consecutively; see `BatmapParams::slot_of`.)
//!
//! Dispatch discipline: every entry point here selects its backend
//! **once per intersection** (or once per batch) via
//! [`KernelBackend::dispatch`] and then runs fully monomorphized bulk
//! loops — no virtual call ever sits inside a per-word or per-chunk
//! loop. The batched one-vs-many driver ([`count_one_vs_many_into`])
//! additionally groups candidates of the probe's width into blocks so
//! the SIMD backends keep each probe register load amortized across the
//! block (see [`MatchKernel::count_equal_width_many`]); candidates of
//! other widths fall back to the monomorphized pairwise path within the
//! same dispatch.

use crate::arena::BatmapRef;
use crate::batmap::AsSlots;
use crate::kernel::{KernelBackend, KernelDispatch, MatchKernel};
use crate::repr::{for_each_batmap_element, BitmapRef, SetView, TidlistRef};
use crate::tuning::{TuningProfile, SWEEP_BLOCK_MAX};
use crate::{slot, BatmapError, TABLES};

/// Best-effort software prefetch of the cache line at `p` into L1.
/// A pure scheduling hint: never faults (x86 `prefetcht0`, AArch64
/// `prfm pldl1keep`), compiles to nothing on other architectures. The
/// one-vs-many sweep issues these for candidates a few blocks ahead so
/// their first lines are in flight while the kernel counts the current
/// block — candidate rows are contiguous arena windows the hardware
/// prefetcher only discovers *after* the first miss per candidate.
#[inline(always)]
fn prefetch_read(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch instructions are hints and never fault, even on
    // unmapped addresses.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(p.cast());
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM is a hint and never faults.
    unsafe {
        std::arch::asm!(
            "prfm pldl1keep, [{0}]",
            in(reg) p,
            options(nostack, preserves_flags, readonly)
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

/// `|a ∩ b|` using the backend configured on `a`'s universe parameters,
/// monomorphized through one dispatch. Generic over the storage of both
/// operands ([`crate::Batmap`] or [`crate::arena::BatmapRef`]). Callers
/// must have verified the batmaps share a universe (see [`try_count`]).
pub(crate) fn count<A: AsSlots + ?Sized, B: AsSlots + ?Sized>(a: &A, b: &B) -> u64 {
    struct Count<'a, A: ?Sized, B: ?Sized>(&'a A, &'a B);
    impl<A: AsSlots + ?Sized, B: AsSlots + ?Sized> KernelDispatch for Count<'_, A, B> {
        type Output = u64;
        fn run<K: MatchKernel>(self, kernel: K) -> u64 {
            count_pair(&kernel, self.0, self.1)
        }
    }
    a.params().kernel_backend().dispatch(Count(a, b))
}

/// Fallible `|a ∩ b|`: checks the universe fingerprints, then counts
/// with the backend configured on `a`'s parameters. The storage-agnostic
/// entry point behind `Batmap::try_intersect_count` and
/// `BatmapRef::try_intersect_count`.
pub fn try_count<A: AsSlots + ?Sized, B: AsSlots + ?Sized>(
    a: &A,
    b: &B,
) -> Result<u64, BatmapError> {
    if a.params().fingerprint() != b.params().fingerprint() {
        return Err(BatmapError::UniverseMismatch);
    }
    Ok(count(a, b))
}

/// `|a ∩ b|` with an explicit match-count backend. This is the single
/// entry point through which positional counting reaches a kernel; the
/// per-backend bench axis drives it directly. Generic over the kernel
/// type so concrete callers monomorphize (`&dyn MatchKernel` works too —
/// one virtual call per intersection, the bulk loop inside is still
/// branch-free) and over the operand storage.
pub fn count_with<K, A, B>(kernel: &K, a: &A, b: &B) -> u64
where
    K: MatchKernel + ?Sized,
    A: AsSlots + ?Sized,
    B: AsSlots + ?Sized,
{
    count_pair(kernel, a, b)
}

/// The width-ordering + equal/wrapped split shared by every pairwise
/// path.
#[inline]
fn count_pair<K, A, B>(kernel: &K, a: &A, b: &B) -> u64
where
    K: MatchKernel + ?Sized,
    A: AsSlots + ?Sized,
    B: AsSlots + ?Sized,
{
    let (wa, wb) = (a.width_bytes(), b.width_bytes());
    if wa == wb {
        kernel.count_equal_width(a.slot_bytes(), b.slot_bytes())
    } else if wa < wb {
        kernel.count_wrapped(b.slot_bytes(), a.slot_bytes())
    } else {
        kernel.count_wrapped(a.slot_bytes(), b.slot_bytes())
    }
}

/// Count intersections of one batmap against many, through the batched
/// driver: one backend dispatch for the whole batch, equal-width
/// candidates swept in register-blocked groups. Used by the examples
/// and figure binaries; the mining tile executors route their row loops
/// through [`count_one_vs_many_into`] with arena-backed views.
///
/// # Panics
/// Panics if any candidate comes from a different universe.
pub fn count_one_vs_many<A: AsSlots, B: AsSlots>(one: &A, many: &[B]) -> Vec<u64> {
    let mut out = vec![0u64; many.len()];
    count_one_vs_many_into(one, many, &mut out);
    out
}

/// [`count_one_vs_many`] writing into a caller-provided slice (the tile
/// executors reuse their row buffers), with the backend taken from
/// `one`'s universe parameters.
///
/// # Panics
/// Panics if `out.len() != many.len()` or any candidate comes from a
/// different universe.
pub fn count_one_vs_many_into<A: AsSlots, B: AsSlots>(one: &A, many: &[B], out: &mut [u64]) {
    count_one_vs_many_with(one.params().kernel_backend(), one, many, out);
}

/// [`count_one_vs_many_into`] with an explicit backend (the bench
/// batch-size sweep drives each backend directly).
///
/// # Panics
/// Panics if `out.len() != many.len()` or any candidate comes from a
/// different universe.
pub fn count_one_vs_many_with<A: AsSlots, B: AsSlots>(
    backend: KernelBackend,
    one: &A,
    many: &[B],
    out: &mut [u64],
) {
    count_one_vs_many_tuned(backend, one, many, out, TuningProfile::current());
}

/// [`count_one_vs_many_with`] with an explicit [`TuningProfile`]
/// instead of the process-wide [`TuningProfile::current`]. This is the
/// `batmap-tune` measurement hook and the `intersect_prefetch` perf
/// scenario's lever: pin `prefetch_dist: 0` to measure the sweep
/// without software prefetching, or sweep `sweep_block` without
/// touching the environment. Tuning never changes counts.
///
/// # Panics
/// Panics if `out.len() != many.len()` or any candidate comes from a
/// different universe.
pub fn count_one_vs_many_tuned<A: AsSlots, B: AsSlots>(
    backend: KernelBackend,
    one: &A,
    many: &[B],
    out: &mut [u64],
    profile: TuningProfile,
) {
    assert_eq!(out.len(), many.len(), "one output slot per candidate");
    struct Batch<'a, A, B> {
        one: &'a A,
        many: &'a [B],
        out: &'a mut [u64],
        profile: TuningProfile,
    }
    impl<A: AsSlots, B: AsSlots> KernelDispatch for Batch<'_, A, B> {
        type Output = ();
        fn run<K: MatchKernel>(self, kernel: K) {
            one_vs_many_sweep(&kernel, self.one, self.many, self.out, self.profile);
        }
    }
    backend.dispatch(Batch {
        one,
        many,
        out,
        profile,
    });
}

/// The monomorphized one-vs-many sweep: candidates that share the
/// probe's width go through the kernel's blocked
/// [`MatchKernel::count_equal_width_many`] (probe words stay hot in
/// registers/L1 across the block); the rest take the pairwise
/// equal/wrapped path — still inside this single dispatch.
fn one_vs_many_sweep<K: MatchKernel, A: AsSlots, B: AsSlots>(
    kernel: &K,
    one: &A,
    many: &[B],
    out: &mut [u64],
    profile: TuningProfile,
) {
    let fp = one.params().fingerprint();
    for b in many {
        assert_eq!(
            b.params().fingerprint(),
            fp,
            "batmaps from different universes"
        );
    }
    let width = one.width_bytes();
    // Common case (the tile executors' row loop: preprocessing sorts
    // batmaps by width, so whole rows usually share one width): every
    // candidate matches the probe — sweep straight into `out` in
    // stack-buffered blocks, no heap allocation per row. Block size and
    // prefetch lookahead come from the tuning profile; the stack buffer
    // is sized for the compile-time maximum.
    if many.iter().all(|b| b.width_bytes() == width) {
        let profile = profile.sanitized();
        let block = profile.sweep_block;
        let n_blocks = many.len().div_ceil(block.max(1));
        for bi in 0..n_blocks {
            let start = bi * block;
            let chunk = &many[start..(start + block).min(many.len())];
            if profile.prefetch_dist > 0 {
                // Warm the first line of each candidate a fixed number
                // of blocks ahead; the hardware prefetcher streams the
                // rest of each window once the kernel starts on it.
                let ahead = start + profile.prefetch_dist * block;
                if ahead < many.len() {
                    for b in &many[ahead..(ahead + block).min(many.len())] {
                        prefetch_read(b.slot_bytes().as_ptr());
                    }
                }
            }
            let mut bytes: [&[u8]; SWEEP_BLOCK_MAX] = [&[]; SWEEP_BLOCK_MAX];
            for (slot, b) in bytes.iter_mut().zip(chunk) {
                *slot = b.slot_bytes();
            }
            kernel.count_equal_width_many(
                one.slot_bytes(),
                &bytes[..chunk.len()],
                &mut out[start..start + chunk.len()],
            );
        }
        return;
    }
    // Mixed widths: blocked sweep for the probe-width candidates,
    // monomorphized pairwise path for the rest, scattered back by
    // index (ordering does not matter for correctness). `Vec::new`
    // defers allocation to the first width match, so a row whose width
    // matches no column stays allocation-free like the fast path.
    let mut eq_idx: Vec<usize> = Vec::new();
    let mut eq_bytes: Vec<&[u8]> = Vec::new();
    for (i, b) in many.iter().enumerate() {
        if b.width_bytes() == width {
            eq_idx.push(i);
            eq_bytes.push(b.slot_bytes());
        } else {
            out[i] = count_pair(kernel, one, b);
        }
    }
    if eq_idx.is_empty() {
        return;
    }
    let mut counts = vec![0u64; eq_bytes.len()];
    kernel.count_equal_width_many(one.slot_bytes(), &eq_bytes, &mut counts);
    for (&i, c) in eq_idx.iter().zip(counts) {
        out[i] = c;
    }
}

/// `|a ∩ b|` between two typed set views, using the backend configured
/// on `a`'s universe parameters — the hybrid storage counterpart of the
/// batmap-only entry points above. Every representation pairing is
/// exact; see [`count_mixed_with`] for the kernel matrix.
///
/// # Panics
/// Panics if the operands come from different universes.
pub fn count_mixed(a: &SetView<'_>, b: &SetView<'_>) -> u64 {
    count_mixed_with(a.params().kernel_backend(), a, b)
}

/// [`count_mixed`] with an explicit match-count backend (which only the
/// batmap×batmap arm consults — the other kernels are
/// representation-specific, not backend-specific).
///
/// The pairing matrix:
///
/// * batmap×batmap — the existing positional SIMD dispatch, unchanged;
/// * bitmap×bitmap — word-wise AND + popcount sweep (widths are equal
///   by construction: both `⌈m/64⌉` words);
/// * tidlist×tidlist — galloping merge, probing the shorter list into
///   the longer with an exponential-then-binary lower-bound search;
/// * every cross-representation pair — the sparser operand's elements
///   stream against the denser operand's O(1)/O(log n) membership test
///   (a batmap streams via its allocation-free indicator-bit walk).
///
/// # Panics
/// Panics if the operands come from different universes.
pub fn count_mixed_with(backend: KernelBackend, a: &SetView<'_>, b: &SetView<'_>) -> u64 {
    assert_eq!(
        a.params().fingerprint(),
        b.params().fingerprint(),
        "sets from different universes"
    );
    count_mixed_pair(backend, a, b)
}

/// The pairing matrix itself, with the universe check hoisted out — the
/// row driver below validates once per row, not once per pair.
fn count_mixed_pair(backend: KernelBackend, a: &SetView<'_>, b: &SetView<'_>) -> u64 {
    match (a, b) {
        (SetView::Batmap(x), SetView::Batmap(y)) => {
            struct Pair<'a>(BatmapRef<'a>, BatmapRef<'a>);
            impl KernelDispatch for Pair<'_> {
                type Output = u64;
                fn run<K: MatchKernel>(self, kernel: K) -> u64 {
                    count_pair(&kernel, &self.0, &self.1)
                }
            }
            backend.dispatch(Pair(*x, *y))
        }
        (SetView::Bitmap(x), SetView::Bitmap(y)) => count_bitmap_bitmap(x, y),
        (SetView::Tidlist(x), SetView::Tidlist(y)) => count_tidlist_tidlist(x, y),
        (SetView::Batmap(bm), SetView::Tidlist(t)) | (SetView::Tidlist(t), SetView::Batmap(bm)) => {
            if t.len() <= bm.len() {
                (0..t.len()).filter(|&i| bm.contains(t.get(i))).count() as u64
            } else {
                let mut n = 0u64;
                for_each_batmap_element(bm, |x| n += t.contains(x) as u64);
                n
            }
        }
        (SetView::Batmap(bm), SetView::Bitmap(bv)) | (SetView::Bitmap(bv), SetView::Batmap(bm)) => {
            if bm.len() <= bv.len() {
                let mut n = 0u64;
                for_each_batmap_element(bm, |x| n += bv.contains(x) as u64);
                n
            } else {
                let mut n = 0u64;
                bv.for_each(|x| n += bm.contains(x) as u64);
                n
            }
        }
        (SetView::Bitmap(bv), SetView::Tidlist(t)) | (SetView::Tidlist(t), SetView::Bitmap(bv)) => {
            if t.len() <= bv.len() {
                (0..t.len()).filter(|&i| bv.contains(t.get(i))).count() as u64
            } else {
                let mut n = 0u64;
                bv.for_each(|x| n += t.contains(x) as u64);
                n
            }
        }
    }
}

/// Count intersections of one typed view against many, the hybrid tile
/// executors' row primitive. The backend is resolved once per row;
/// batmap candidates of a batmap probe are batched through the
/// register-blocked [`count_one_vs_many_with`] sweep, everything else
/// takes the per-pair mixed kernels.
///
/// # Panics
/// Panics if `out.len() != many.len()` or any candidate comes from a
/// different universe.
pub fn count_mixed_one_vs_many_into(one: &SetView<'_>, many: &[SetView<'_>], out: &mut [u64]) {
    assert_eq!(out.len(), many.len(), "one output slot per candidate");
    if let Some(first) = many.first() {
        // One universe check per row; candidates of a row all come from
        // the same arena, so per-pair re-validation (a fingerprint hash
        // on both sides, ~88M times for a 13k-item corpus) would be
        // pure overhead on the hot path.
        assert_eq!(
            one.params().fingerprint(),
            first.params().fingerprint(),
            "sets from different universes"
        );
    }
    let backend = one.params().kernel_backend();
    match one {
        SetView::Batmap(probe) => {
            // Recover the batched equal-width sweep for the batmap
            // portion of the row (preprocessing sorts by width, so
            // batmap columns cluster); the `Vec`s defer allocation
            // until the first batmap candidate. Against sparse
            // candidates the probe's elements are decoded once per row
            // (`elements()` pays one Feistel inversion per element —
            // far too much to redo per pair) and merged directly.
            let mut bm_idx: Vec<usize> = Vec::new();
            let mut bm_views: Vec<BatmapRef<'_>> = Vec::new();
            let mut elems: Option<Vec<u32>> = None;
            for (i, c) in many.iter().enumerate() {
                match c {
                    SetView::Batmap(b) => {
                        bm_idx.push(i);
                        bm_views.push(*b);
                    }
                    _ => {
                        let elems = elems.get_or_insert_with(|| {
                            let mut e = probe.elements();
                            e.sort_unstable();
                            e
                        });
                        out[i] = match c {
                            SetView::Tidlist(t) => count_sorted_vs_tidlist(elems, t),
                            SetView::Bitmap(b) => {
                                elems.iter().filter(|&&x| b.contains(x)).count() as u64
                            }
                            SetView::Batmap(_) => unreachable!("handled above"),
                        };
                    }
                }
            }
            if !bm_idx.is_empty() {
                let mut counts = vec![0u64; bm_views.len()];
                count_one_vs_many_with(backend, probe, &bm_views, &mut counts);
                for (&i, c) in bm_idx.iter().zip(counts) {
                    out[i] = c;
                }
            }
        }
        SetView::Tidlist(probe) => {
            // Decode the probe's elements once for the whole row — on a
            // zipfian corpus the sparse tail dominates, so this is the
            // hottest row shape by far, and re-decoding the probe for
            // every candidate costs more than the merges themselves.
            // For batmap candidates, additionally precompute each
            // element's permuted values and slot keys (lazily — only
            // rows that meet a batmap candidate pay the Feistel
            // applies), turning every such pair into a handful of
            // direct slot reads.
            let elems = probe.elements();
            let mut probes: Option<Vec<[(u64, u8); 3]>> = None;
            for (o, c) in out.iter_mut().zip(many) {
                *o = match c {
                    SetView::Tidlist(t) => count_sorted_vs_tidlist(&elems, t),
                    SetView::Bitmap(b) => elems.iter().filter(|&&x| b.contains(x)).count() as u64,
                    SetView::Batmap(bm) => {
                        let probes = probes.get_or_insert_with(|| {
                            let params = probe.params();
                            elems
                                .iter()
                                .map(|&x| {
                                    std::array::from_fn(|t| {
                                        let pi = params.perms().apply(t, x as u64);
                                        (pi, params.key_of(pi))
                                    })
                                })
                                .collect()
                        });
                        count_slot_probes_vs_batmap(probes, bm)
                    }
                };
            }
        }
        SetView::Bitmap(_) => {
            for (o, c) in out.iter_mut().zip(many) {
                *o = count_mixed_pair(backend, one, c);
            }
        }
    }
}

/// Membership count of precomputed slot probes — `(πₜ(x), key)` per
/// table for each probed element — against one batmap: the positional
/// part of [`AsSlots::contains`] with the Feistel applies hoisted out,
/// so a sparse row probes each batmap candidate with plain slot reads.
fn count_slot_probes_vs_batmap(probes: &[[(u64, u8); 3]], bm: &BatmapRef<'_>) -> u64 {
    let params = bm.params();
    let r = bm.range();
    let bytes = bm.as_bytes();
    probes
        .iter()
        .filter(|p| {
            (0..TABLES).any(|t| {
                let (pi, key) = p[t];
                let b = bytes[params.slot_of(t, pi, r)];
                !slot::is_empty(b) && slot::key(b) == key
            })
        })
        .count() as u64
}

/// Intersection count of a decoded sorted element slice against a
/// tidlist view: galloping probe of the smaller side into the larger,
/// like [`count_tidlist_tidlist`] but with one side already decoded.
fn count_sorted_vs_tidlist(probe: &[u32], t: &TidlistRef<'_>) -> u64 {
    let mut count = 0u64;
    let mut from = 0usize;
    if probe.len() <= t.len() {
        for &x in probe {
            if from >= t.len() {
                break;
            }
            let pos = gallop_lower_bound(t, from, x);
            if pos < t.len() && t.get(pos) == x {
                count += 1;
                from = pos + 1;
            } else {
                from = pos;
            }
        }
    } else {
        for i in 0..t.len() {
            if from >= probe.len() {
                break;
            }
            let x = t.get(i);
            let pos = from + probe[from..].partition_point(|&v| v < x);
            if pos < probe.len() && probe[pos] == x {
                count += 1;
                from = pos + 1;
            } else {
                from = pos;
            }
        }
    }
    count
}

/// Word-wise AND + popcount over two equal-width bitmaps.
fn count_bitmap_bitmap(a: &BitmapRef<'_>, b: &BitmapRef<'_>) -> u64 {
    debug_assert_eq!(a.width_bytes(), b.width_bytes());
    a.as_bytes()
        .chunks_exact(8)
        .zip(b.as_bytes().chunks_exact(8))
        .map(|(ca, cb)| {
            let wa = u64::from_le_bytes(ca.try_into().unwrap());
            let wb = u64::from_le_bytes(cb.try_into().unwrap());
            (wa & wb).count_ones() as u64
        })
        .sum()
}

/// Galloping merge of two sorted tidlists: probe the shorter into the
/// longer, each probe resuming where the last one landed.
fn count_tidlist_tidlist(a: &TidlistRef<'_>, b: &TidlistRef<'_>) -> u64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut count = 0u64;
    let mut from = 0usize;
    for i in 0..small.len() {
        if from >= large.len() {
            break;
        }
        let x = small.get(i);
        let pos = gallop_lower_bound(large, from, x);
        if pos < large.len() && large.get(pos) == x {
            count += 1;
            from = pos + 1;
        } else {
            from = pos;
        }
    }
    count
}

/// First index `≥ from` whose element is `≥ x`: exponential widening
/// from `from` (so runs of nearby probes cost O(log gap), not
/// O(log n)), then binary search inside the bracketed window.
fn gallop_lower_bound(t: &TidlistRef<'_>, from: usize, x: u32) -> usize {
    let n = t.len();
    if from >= n || t.get(from) >= x {
        return from;
    }
    // Invariant: t.get(lo) < x.
    let mut lo = from;
    let mut step = 1usize;
    while lo + step < n && t.get(lo + step) < x {
        lo += step;
        step <<= 1;
    }
    let mut hi = (lo + step).min(n); // t.get(hi) ≥ x, or hi == n
    let mut l = lo + 1;
    while l < hi {
        let mid = l + (hi - l) / 2;
        if t.get(mid) < x {
            l = mid + 1;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Exact reference: decode both element sets and intersect them. Used by
/// tests and the verification examples; O(n log n) and branchy — the very
/// thing the paper avoids on the hot path.
pub fn count_by_decoding<A: AsSlots + ?Sized, B: AsSlots + ?Sized>(a: &A, b: &B) -> u64 {
    let mut ea = a.elements();
    ea.sort_unstable();
    let mut count = 0u64;
    for x in b.elements() {
        if ea.binary_search(&x).is_ok() {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use crate::params::BatmapParams;
    use crate::Batmap;
    use std::sync::Arc;

    #[test]
    fn positional_equals_decoded() {
        let p = Arc::new(BatmapParams::new(40_000, 77));
        let a: Vec<u32> = (0..1500).map(|i| i * 3 % 40_000).collect();
        let b: Vec<u32> = (0..400).map(|i| i * 9 % 40_000).collect();
        let ba = Batmap::build(p.clone(), &a).batmap;
        let bb = Batmap::build(p, &b).batmap;
        assert_eq!(ba.intersect_count(&bb), super::count_by_decoding(&ba, &bb));
    }

    #[test]
    fn every_backend_counts_identically() {
        use crate::kernel::available_backends;
        let p = Arc::new(BatmapParams::new(30_000, 5));
        let small: Vec<u32> = (0..200).map(|i| i * 11 % 30_000).collect();
        let large: Vec<u32> = (0..4000).map(|i| i * 7 % 30_000).collect();
        let bs = Batmap::build(p.clone(), &small).batmap;
        let bl = Batmap::build(p, &large).batmap;
        let expect = super::count_by_decoding(&bs, &bl);
        for backend in available_backends() {
            assert_eq!(
                super::count_with(backend.kernel(), &bs, &bl),
                expect,
                "backend {backend} (folded path)"
            );
            assert_eq!(
                super::count_with(backend.kernel(), &bl, &bl),
                bl.len() as u64,
                "backend {backend} (equal-width path)"
            );
        }
    }

    #[test]
    fn params_pinned_backend_is_used() {
        use crate::kernel::KernelBackend;
        for backend in crate::kernel::available_backends() {
            let p = Arc::new(
                BatmapParams::new(10_000, 9)
                    .with_engine_options(crate::options::EngineOptions::auto().kernel(backend)),
            );
            let a = Batmap::build(p.clone(), &(0..800).collect::<Vec<_>>()).batmap;
            let b = Batmap::build(p, &(400..1200).collect::<Vec<_>>()).batmap;
            assert_eq!(a.params().kernel_backend(), backend);
            assert_eq!(a.intersect_count(&b), 400);
        }
        let _ = KernelBackend::Auto; // exercised via the default elsewhere
    }

    #[test]
    fn one_vs_many_matches_pointwise() {
        let p = Arc::new(BatmapParams::new(10_000, 3));
        let probe = Batmap::build(p.clone(), &(0..500).collect::<Vec<_>>()).batmap;
        let many: Vec<Batmap> = (0..5)
            .map(|k| {
                Batmap::build(
                    p.clone(),
                    &(0..(100 * (k + 1))).map(|i| i * 2).collect::<Vec<_>>(),
                )
                .batmap
            })
            .collect();
        let counts = super::count_one_vs_many(&probe, &many);
        for (i, b) in many.iter().enumerate() {
            assert_eq!(counts[i], probe.intersect_count(b));
        }
    }

    #[test]
    fn one_vs_many_batches_per_backend() {
        // Mixed widths: some candidates share the probe's width (the
        // blocked path), some are smaller/larger (the pairwise path).
        let p = Arc::new(BatmapParams::new(50_000, 21));
        let probe = Batmap::build(p.clone(), &(0..1000).collect::<Vec<_>>()).batmap;
        let sizes = [50usize, 1000, 900, 4000, 1000, 1000, 30, 1100, 1000];
        let many: Vec<Batmap> = sizes
            .iter()
            .map(|&n| {
                Batmap::build(p.clone(), &(0..n as u32).map(|i| i * 3).collect::<Vec<_>>()).batmap
            })
            .collect();
        assert!(
            many.iter().any(|b| b.width_bytes() == probe.width_bytes()),
            "fixture must exercise the blocked path"
        );
        let expect: Vec<u64> = many.iter().map(|b| probe.intersect_count(b)).collect();
        for backend in crate::kernel::available_backends() {
            let mut out = vec![0u64; many.len()];
            super::count_one_vs_many_with(backend, &probe, &many, &mut out);
            assert_eq!(out, expect, "backend {backend}");
        }
    }

    #[test]
    fn tuned_sweeps_count_identically_for_every_profile() {
        use crate::tuning::{TuningProfile, SWEEP_BLOCK_MAX};
        let p = Arc::new(BatmapParams::new(20_000, 0x7E57));
        let probe = Batmap::build(p.clone(), &(0..900).collect::<Vec<_>>()).batmap;
        let many: Vec<Batmap> = (0..23)
            .map(|k| {
                Batmap::build(
                    p.clone(),
                    &(0..800).map(|i| i * (k + 2)).collect::<Vec<_>>(),
                )
                .batmap
            })
            .collect();
        let expect: Vec<u64> = many.iter().map(|b| probe.intersect_count(b)).collect();
        for backend in crate::kernel::available_backends() {
            for sweep_block in [1, 2, 3, SWEEP_BLOCK_MAX, SWEEP_BLOCK_MAX + 100] {
                for prefetch_dist in [0, 1, 4, 64] {
                    let profile = TuningProfile {
                        tile_side: 64,
                        sweep_block,
                        prefetch_dist,
                    };
                    let mut out = vec![0u64; many.len()];
                    super::count_one_vs_many_tuned(backend, &probe, &many, &mut out, profile);
                    assert_eq!(
                        out, expect,
                        "backend {backend} block {sweep_block} prefetch {prefetch_dist}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn one_vs_many_rejects_foreign_universe() {
        let p = Arc::new(BatmapParams::new(1_000, 1));
        let q = Arc::new(BatmapParams::new(1_000, 2));
        let probe = Batmap::build(p, &[1, 2, 3]).batmap;
        let alien = Batmap::build(q, &[1, 2, 3]).batmap;
        let _ = super::count_one_vs_many(&probe, &[alien]);
    }

    use crate::arena::ArenaBuilder;
    use crate::repr::SetRepr;

    const ALL_REPRS: [SetRepr; 3] = [SetRepr::Batmap, SetRepr::Bitmap, SetRepr::Tidlist];

    /// Sorted-intersection oracle over raw element lists.
    fn oracle(a: &[u32], b: &[u32]) -> u64 {
        let mut sa: Vec<u32> = a.to_vec();
        sa.sort_unstable();
        sa.dedup();
        let mut sb: Vec<u32> = b.to_vec();
        sb.sort_unstable();
        sb.dedup();
        sb.iter().filter(|x| sa.binary_search(x).is_ok()).count() as u64
    }

    #[test]
    fn mixed_pairings_match_oracle() {
        let p = Arc::new(BatmapParams::new(8_000, 0xBEE5));
        let fixtures: Vec<Vec<u32>> = vec![
            vec![],
            (0..7).map(|i| i * 1000).collect(),
            (0..500).map(|i| i * 13 % 8_000).collect(),
            (0..6000).map(|i| i * 7 % 8_000).collect(),
        ];
        for sa in &fixtures {
            for sb in &fixtures {
                let expect = oracle(sa, sb);
                for ra in ALL_REPRS {
                    for rb in ALL_REPRS {
                        let mut builder = ArenaBuilder::new(p.clone());
                        builder.push_elements(sa, ra);
                        builder.push_elements(sb, rb);
                        let arena = builder.finish();
                        let (va, vb) = (arena.payload(0), arena.payload(1));
                        assert_eq!(
                            super::count_mixed(&va, &vb),
                            expect,
                            "{ra}×{rb} |a|={} |b|={}",
                            sa.len(),
                            sb.len()
                        );
                        // Symmetry: the probe-the-sparser choice must
                        // not change the count.
                        assert_eq!(super::count_mixed(&vb, &va), expect, "{rb}×{ra} swapped");
                    }
                }
            }
        }
    }

    #[test]
    fn mixed_one_vs_many_matches_pointwise() {
        let p = Arc::new(BatmapParams::new(8_000, 0xBEE5));
        let mut builder = ArenaBuilder::new(p.clone());
        let sets: Vec<Vec<u32>> = (0..9)
            .map(|k| (0..(30 + 700 * k)).map(|i| (i * (k + 3)) % 8_000).collect())
            .collect();
        for (k, s) in sets.iter().enumerate() {
            builder.push_elements(s, ALL_REPRS[k % 3]);
        }
        let arena = builder.finish();
        let views = arena.payload_views(0..arena.len());
        for probe_idx in 0..views.len() {
            let probe = arena.payload(probe_idx);
            let mut out = vec![0u64; views.len()];
            super::count_mixed_one_vs_many_into(&probe, &views, &mut out);
            for (j, v) in views.iter().enumerate() {
                assert_eq!(
                    out[j],
                    super::count_mixed(&probe, v),
                    "probe {probe_idx} vs {j}"
                );
            }
        }
    }

    #[test]
    fn gallop_lower_bound_brackets_correctly() {
        let p = Arc::new(BatmapParams::new(1_000, 3));
        let elements: Vec<u32> = vec![2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987];
        let mut builder = ArenaBuilder::new(p);
        builder.push_elements(&elements, SetRepr::Tidlist);
        let arena = builder.finish();
        let crate::repr::SetView::Tidlist(t) = arena.payload(0) else {
            panic!("tidlist expected");
        };
        for from in 0..=elements.len() {
            for x in 0..1000u32 {
                let expect =
                    from + elements[from.min(elements.len())..].partition_point(|&e| e < x);
                assert_eq!(
                    super::gallop_lower_bound(&t, from, x),
                    expect.min(elements.len()).max(from),
                    "from={from} x={x}"
                );
            }
        }
    }
}
