//! Pluggable match-count kernel backends.
//!
//! The §III-A branch-free word comparison is the workhorse of the whole
//! paper, and the natural seam for hardware specialization. The same
//! positional predicate is evaluated at every lane width the host
//! offers:
//!
//! | backend  | lanes/step | register        | availability |
//! |----------|-----------:|-----------------|--------------|
//! | `scalar` | 1          | byte            | everywhere (test oracle) |
//! | `swar32` | 4          | `u32`           | everywhere (the paper's printed form) |
//! | `swar64` | 8          | `u64`           | everywhere (widest portable) |
//! | `neon`   | 16         | 128-bit NEON    | `aarch64` baseline |
//! | `sse2`   | 16         | 128-bit XMM     | `x86_64` baseline |
//! | `avx2`   | 32         | 256-bit YMM     | `x86_64` with AVX2 (runtime-detected) |
//! | `avx512` | 64         | 512-bit ZMM     | `x86_64` with AVX-512BW (runtime-detected) |
//!
//! [`MatchKernel`] abstracts that choice. Every consumer of match
//! counting — [`crate::intersect`], [`crate::multiway`], and the
//! `pairminer` engines — dispatches through this trait; the raw
//! formulations in [`crate::swar`] and `crate::simd` (the latter
//! `x86_64`-only, hence no doc link) are backend internals (and
//! ablation material for the benches).
//!
//! **Dispatch happens once per intersection, not once per word.** Each
//! backend implements the slice entry points (`count_equal_width`,
//! `count_wrapped`, and the batched `count_equal_width_many`) as a
//! monomorphized bulk loop over the whole input, and the intersection
//! drivers select the backend through [`KernelBackend::dispatch`], so
//! the inner loops contain no indirect calls at all. All wide backends
//! share one tail path ([`crate::swar::match_count_slices`]) for widths
//! that are not register multiples.
//!
//! Backend selection is runtime data, not a compile-time feature:
//! [`KernelBackend::Auto`] resolves to the widest backend *available on
//! this CPU* (AVX-512 where detected, else AVX2, else SSE2 on any
//! `x86_64`; NEON on `aarch64`; SWAR-u64 elsewhere), honouring a
//! `BATMAP_KERNEL` environment override, and
//! can be pinned per universe via [`crate::BatmapParams::with_kernel`]
//! or per mining run via the miner configuration. Requesting a backend
//! the CPU lacks downgrades (with a one-time warning) to the widest
//! available one — counts are backend-independent, so a downgrade never
//! changes results, only speed. The §III-B GPU simulator charges each
//! backend its own amortized cost per staged word
//! ([`MatchKernel::ops_per_staged_word`]), so simulated `--kernel`
//! sweeps reflect lane width too.

#[cfg(target_arch = "aarch64")]
use crate::neon;
#[cfg(target_arch = "x86_64")]
use crate::simd;
use crate::swar;
use std::fmt;
use std::sync::OnceLock;

/// A positional match-counting backend.
///
/// Implementations must all compute the paper's exact predicate: a slot
/// position counts iff the two 7-bit keys agree **and** at least one of
/// the two indicator bits is set.
pub trait MatchKernel: fmt::Debug + Send + Sync {
    /// Stable human-readable backend name (used in bench labels and the
    /// `BATMAP_KERNEL` override).
    fn name(&self) -> &'static str;

    /// Lanes processed per inner-loop step (1 for scalar, 4 for u32
    /// words, 8 for u64 words, 16 for SSE2, 32 for AVX2).
    fn lanes(&self) -> usize;

    /// Count matching slots of one 32-bit word of four slots — the
    /// granularity the §III-B GPU kernel stages through shared memory.
    fn count_word_u32(&self, x: u32, y: u32) -> u32;

    /// Scalar ops the §III-B GPU simulator charges per staged 32-bit
    /// comparison with this backend (the paper's amortized accounting
    /// for its u32 formulation is 8; wider or narrower backends scale
    /// accordingly so simulated `--kernel` sweeps reflect backend
    /// cost).
    fn ops_per_staged_word(&self) -> u64 {
        8
    }

    /// Count matching slots between two equal-width slot arrays.
    fn count_equal_width(&self, xs: &[u8], ys: &[u8]) -> u64;

    /// Count matches between `large` and `small` where `small` is
    /// logically tiled (wrapped) along `large` — the §II comparison of
    /// batmaps with different ranges, reduced to chunk wrap-around by
    /// the block layout.
    ///
    /// # Panics
    /// Panics if `small` is empty or `large.len()` is not a multiple of
    /// `small.len()`.
    fn count_wrapped(&self, large: &[u8], small: &[u8]) -> u64 {
        assert!(!small.is_empty());
        assert_eq!(
            large.len() % small.len(),
            0,
            "large width {} must be a multiple of small width {}",
            large.len(),
            small.len()
        );
        large
            .chunks_exact(small.len())
            .map(|chunk| self.count_equal_width(chunk, small))
            .sum()
    }

    /// Count one probe array against many equal-width candidates,
    /// writing `|probe ∩ candidateᵢ|` into `out[i]` — the kernel of the
    /// batched one-vs-many driver ([`crate::intersect`]). The SIMD
    /// backends override this with a chunk-major loop that loads each
    /// probe register once per block of candidates, keeping the probe
    /// hot in registers/L1 while sweeping the block.
    ///
    /// # Panics
    /// Panics if `candidates` and `out` have different lengths or any
    /// candidate's width differs from the probe's.
    fn count_equal_width_many(&self, probe: &[u8], candidates: &[&[u8]], out: &mut [u64]) {
        assert_eq!(candidates.len(), out.len(), "one output slot per candidate");
        for (c, o) in candidates.iter().zip(out) {
            *o = self.count_equal_width(probe, c);
        }
    }

    /// Equality of two full positional values (the §V multiway sweep,
    /// which stores uncompressed permuted values rather than slot
    /// bytes). Branch-free in the SWAR and SIMD backends.
    fn value_eq(&self, x: u64, y: u64) -> bool {
        x == y
    }
}

/// Byte-at-a-time reference backend: the predicate with ordinary
/// control flow. The test oracle, and the "branchy CPU" ablation point.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarKernel;

impl MatchKernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }
    fn lanes(&self) -> usize {
        1
    }
    fn count_word_u32(&self, x: u32, y: u32) -> u32 {
        swar::match_count_bytes(&x.to_le_bytes(), &y.to_le_bytes()) as u32
    }
    fn ops_per_staged_word(&self) -> u64 {
        // Four byte lanes, each a branchy compare-mask-test sequence.
        32
    }
    fn count_equal_width(&self, xs: &[u8], ys: &[u8]) -> u64 {
        assert_eq!(xs.len(), ys.len(), "batmap slices must have equal width");
        swar::match_count_bytes(xs, ys)
    }
}

/// The paper's printed formulation: four slots per 32-bit word.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwarU32Kernel;

impl MatchKernel for SwarU32Kernel {
    fn name(&self) -> &'static str {
        "swar32"
    }
    fn lanes(&self) -> usize {
        4
    }
    fn count_word_u32(&self, x: u32, y: u32) -> u32 {
        swar::match_count_u32(x, y)
    }
    fn count_equal_width(&self, xs: &[u8], ys: &[u8]) -> u64 {
        assert_eq!(xs.len(), ys.len(), "batmap slices must have equal width");
        let mut count = 0u64;
        let mut chunks_x = xs.chunks_exact(4);
        let mut chunks_y = ys.chunks_exact(4);
        for (cx, cy) in (&mut chunks_x).zip(&mut chunks_y) {
            let wx = u32::from_le_bytes(cx.try_into().unwrap());
            let wy = u32::from_le_bytes(cy.try_into().unwrap());
            count += swar::match_count_u32(wx, wy) as u64;
        }
        count + swar::match_count_bytes(chunks_x.remainder(), chunks_y.remainder())
    }
    fn value_eq(&self, x: u64, y: u64) -> bool {
        branchless_eq(x, y)
    }
}

/// Popcount widening: eight slots per 64-bit word (the widest portable
/// backend; the SSE2/AVX2 backends in `crate::simd` slot in behind
/// the same trait on `x86_64`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SwarU64Kernel;

impl MatchKernel for SwarU64Kernel {
    fn name(&self) -> &'static str {
        "swar64"
    }
    fn lanes(&self) -> usize {
        8
    }
    fn count_word_u32(&self, x: u32, y: u32) -> u32 {
        // A single staged word: widen through the u64 kernel. At this
        // granularity the 8-lane width buys nothing (the upper lanes
        // are padding), so the simulated cost stays at the default 8
        // ops — pairing adjacent staged words into one u64 comparison
        // is the future optimization that would earn a discount here.
        swar::match_count_u64(x as u64, y as u64)
    }
    fn count_equal_width(&self, xs: &[u8], ys: &[u8]) -> u64 {
        swar::match_count_slices(xs, ys)
    }
    fn value_eq(&self, x: u64, y: u64) -> bool {
        branchless_eq(x, y)
    }
}

/// Branch-free `x == y` for 64-bit values: `x ^ y` is zero iff equal,
/// and `d | -d` has its top bit set iff `d != 0`.
#[inline]
pub(crate) fn branchless_eq(x: u64, y: u64) -> bool {
    let d = x ^ y;
    (d | d.wrapping_neg()) >> 63 == 0
}

/// Runtime-selectable backend identifier.
///
/// Carried by [`crate::BatmapParams`] (and the miner configuration), so
/// the choice travels with the data it applies to. `Auto` defers the
/// decision to [`KernelBackend::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelBackend {
    /// Pick the widest backend available on this CPU at runtime,
    /// honouring the `BATMAP_KERNEL` environment override.
    #[default]
    Auto,
    /// Byte-at-a-time reference.
    Scalar,
    /// Four lanes per 32-bit word (the paper's formulation).
    SwarU32,
    /// Eight lanes per 64-bit word.
    SwarU64,
    /// Sixteen lanes per 128-bit NEON register (`aarch64` only, where
    /// Advanced SIMD is baseline).
    Neon,
    /// Sixteen lanes per 128-bit SSE2 register (`x86_64` only).
    Sse2,
    /// Thirty-two lanes per 256-bit AVX2 register (`x86_64` with AVX2).
    Avx2,
    /// Sixty-four lanes per 512-bit ZMM register (`x86_64` with
    /// AVX-512F + AVX-512BW).
    Avx512,
}

/// The concrete (non-`Auto`) backends, widest last (`neon` and `sse2`
/// share a lane width but are never available on the same
/// architecture, so the *available* sub-sequence is strictly widening
/// on every host). Iterate [`available_backends`] instead when the
/// code will actually *execute* the backend — the tail of this list is
/// not available on every CPU.
pub const ALL_BACKENDS: [KernelBackend; 7] = [
    KernelBackend::Scalar,
    KernelBackend::SwarU32,
    KernelBackend::SwarU64,
    KernelBackend::Neon,
    KernelBackend::Sse2,
    KernelBackend::Avx2,
    KernelBackend::Avx512,
];

/// The concrete backends available on this CPU, widest last (bench axes
/// and the CI kernel matrix iterate this so AVX2-less runners skip
/// gracefully).
pub fn available_backends() -> impl Iterator<Item = KernelBackend> {
    ALL_BACKENDS.into_iter().filter(|b| b.is_available())
}

impl KernelBackend {
    /// Parse a backend name as used by `BATMAP_KERNEL` and bench labels.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(KernelBackend::Auto),
            "scalar" => Some(KernelBackend::Scalar),
            "swar32" | "u32" => Some(KernelBackend::SwarU32),
            "swar64" | "u64" => Some(KernelBackend::SwarU64),
            "neon" => Some(KernelBackend::Neon),
            "sse2" => Some(KernelBackend::Sse2),
            "avx2" => Some(KernelBackend::Avx2),
            "avx512" => Some(KernelBackend::Avx512),
            _ => None,
        }
    }

    /// Stable name of this backend.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Auto => "auto",
            KernelBackend::Scalar => "scalar",
            KernelBackend::SwarU32 => "swar32",
            KernelBackend::SwarU64 => "swar64",
            KernelBackend::Neon => "neon",
            KernelBackend::Sse2 => "sse2",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Avx512 => "avx512",
        }
    }

    /// Whether this backend can execute on the current CPU. `Auto` and
    /// the portable backends are always available; `neon` requires
    /// `aarch64` (where it is baseline); `sse2` requires `x86_64`
    /// (where it is baseline); `avx2` and `avx512` additionally require
    /// runtime feature detection.
    pub fn is_available(self) -> bool {
        match self {
            KernelBackend::Auto
            | KernelBackend::Scalar
            | KernelBackend::SwarU32
            | KernelBackend::SwarU64 => true,
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx2 => simd::avx2_available(),
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx512 => simd::avx512_available(),
            #[cfg(target_arch = "aarch64")]
            KernelBackend::Neon => true,
            #[cfg(not(target_arch = "x86_64"))]
            KernelBackend::Sse2 | KernelBackend::Avx2 | KernelBackend::Avx512 => false,
            #[cfg(not(target_arch = "aarch64"))]
            KernelBackend::Neon => false,
        }
    }

    /// The widest backend available on this CPU (what `Auto` resolves
    /// to absent an override): AVX-512 where detected, else AVX2, else
    /// SSE2 on any `x86_64`; NEON on `aarch64`; SWAR-u64 elsewhere.
    pub fn widest_available() -> KernelBackend {
        ALL_BACKENDS
            .into_iter()
            .rev()
            .find(|b| b.is_available())
            .expect("portable backends are always available")
    }

    /// The pure resolution rule behind [`KernelBackend::resolve`]:
    /// map an optional `BATMAP_KERNEL` override string to a concrete,
    /// *available* backend. Exposed so the resolution policy is unit
    /// testable without mutating process environment.
    ///
    /// * `None` / `Some("auto")` → [`KernelBackend::widest_available`];
    /// * a valid, available backend name → that backend;
    /// * a valid but unavailable name (e.g. `avx2` on a CPU without
    ///   AVX2) → the widest available backend, with a warning;
    /// * an invalid name → the widest available backend, with a
    ///   warning.
    pub fn resolve_override(var: Option<&str>) -> KernelBackend {
        let widest = Self::widest_available();
        match var.map(KernelBackend::from_name) {
            None | Some(Some(KernelBackend::Auto)) => widest,
            Some(Some(concrete)) if concrete.is_available() => concrete,
            Some(Some(concrete)) => {
                // CI runs the kernel matrix on heterogeneous runners:
                // degrade, don't die — counts are backend-independent.
                eprintln!(
                    "warning: BATMAP_KERNEL={} is not available on this CPU; using {}",
                    concrete.name(),
                    widest.name()
                );
                widest
            }
            Some(None) => {
                // Never abort someone else's run over an env var, but
                // don't let a typo silently produce data for the wrong
                // experiment either.
                eprintln!(
                    "warning: ignoring invalid BATMAP_KERNEL={} \
                     (expected auto|scalar|swar32|swar64|neon|sse2|avx2|avx512); using {}",
                    var.unwrap_or_default(),
                    widest.name()
                );
                widest
            }
        }
    }

    /// Resolve to a concrete, available backend. `Auto` consults the
    /// `BATMAP_KERNEL` environment variable once (cached) and otherwise
    /// picks the widest backend this CPU supports; a concrete backend
    /// resolves to itself when available and downgrades to the widest
    /// available one (with a one-time warning) when not.
    pub fn resolve(self) -> KernelBackend {
        if self != KernelBackend::Auto {
            if self.is_available() {
                return self;
            }
            static DOWNGRADED: std::sync::Once = std::sync::Once::new();
            DOWNGRADED.call_once(|| {
                eprintln!(
                    "warning: kernel backend {} is not available on this CPU; using {}",
                    self.name(),
                    KernelBackend::widest_available().name()
                );
            });
            return KernelBackend::widest_available();
        }
        static AUTO: OnceLock<KernelBackend> = OnceLock::new();
        *AUTO.get_or_init(|| KernelBackend::resolve_override(crate::options::kernel_env()))
    }

    /// The kernel implementation this identifier selects, as a trait
    /// object. Handy for code that makes a handful of coarse calls (the
    /// bench axes, the Fig. 11 sweep); hot loops should go through
    /// [`KernelBackend::dispatch`] instead so the whole intersection
    /// monomorphizes.
    pub fn kernel(self) -> &'static dyn MatchKernel {
        match self.resolve() {
            KernelBackend::Scalar => &ScalarKernel,
            KernelBackend::SwarU32 => &SwarU32Kernel,
            KernelBackend::SwarU64 => &SwarU64Kernel,
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Sse2 => &simd::Sse2Kernel,
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx2 => &simd::Avx2Kernel,
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx512 => &simd::Avx512Kernel,
            #[cfg(target_arch = "aarch64")]
            KernelBackend::Neon => &neon::NeonKernel,
            #[cfg(not(target_arch = "x86_64"))]
            KernelBackend::Sse2 | KernelBackend::Avx2 | KernelBackend::Avx512 => {
                unreachable!("resolve() never selects an unavailable backend")
            }
            #[cfg(not(target_arch = "aarch64"))]
            KernelBackend::Neon => {
                unreachable!("resolve() never selects an unavailable backend")
            }
            KernelBackend::Auto => unreachable!("resolve() returns a concrete backend"),
        }
    }

    /// Monomorphizing dispatch: resolve the backend and run `op` with
    /// the concrete kernel type, so hot loops written against
    /// `K: MatchKernel` pay no virtual call per position — the one
    /// indirect step happens here, once per intersection. This is the
    /// single place that maps identifiers to types — new backends are
    /// added here once and every dispatch site inherits them.
    pub fn dispatch<D: KernelDispatch>(self, op: D) -> D::Output {
        match self.resolve() {
            KernelBackend::Scalar => op.run(ScalarKernel),
            KernelBackend::SwarU32 => op.run(SwarU32Kernel),
            KernelBackend::SwarU64 => op.run(SwarU64Kernel),
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Sse2 => op.run(simd::Sse2Kernel),
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx2 => op.run(simd::Avx2Kernel),
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx512 => op.run(simd::Avx512Kernel),
            #[cfg(target_arch = "aarch64")]
            KernelBackend::Neon => op.run(neon::NeonKernel),
            #[cfg(not(target_arch = "x86_64"))]
            KernelBackend::Sse2 | KernelBackend::Avx2 | KernelBackend::Avx512 => {
                unreachable!("resolve() never selects an unavailable backend")
            }
            #[cfg(not(target_arch = "aarch64"))]
            KernelBackend::Neon => {
                unreachable!("resolve() never selects an unavailable backend")
            }
            KernelBackend::Auto => unreachable!("resolve() returns a concrete backend"),
        }
    }
}

/// An operation generic over the concrete kernel type, for
/// [`KernelBackend::dispatch`] (monomorphized per backend).
pub trait KernelDispatch {
    /// Result of the operation.
    type Output;
    /// Run with the concrete backend.
    fn run<K: MatchKernel>(self, kernel: K) -> Self::Output;
}

impl fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// Serialized as the backend name, so parameter fingerprints and stored
// universes stay readable and forward-compatible with new backends.
impl serde::Serialize for KernelBackend {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self.name())
    }
}

impl<'de> serde::Deserialize<'de> for KernelBackend {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let name = String::deserialize(d)?;
        KernelBackend::from_name(&name)
            .ok_or_else(|| serde::de::Error::custom(format!("unknown kernel backend `{name}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sl(key: u8, ind: bool) -> u8 {
        key | if ind { 0x80 } else { 0 }
    }

    fn sample_arrays(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let gen = |next: &mut dyn FnMut() -> u64| -> Vec<u8> {
            (0..len)
                .map(|_| {
                    let r = next();
                    if r.is_multiple_of(5) {
                        0x7F // empty slot
                    } else {
                        sl((r >> 8) as u8 % 0x7F, r & 1 == 1)
                    }
                })
                .collect()
        };
        (gen(&mut next), gen(&mut next))
    }

    #[test]
    fn backends_agree_on_equal_width() {
        for len in [0usize, 1, 3, 4, 7, 8, 15, 17, 31, 33, 64, 257] {
            let (xs, ys) = sample_arrays(len, 0xBEEF + len as u64);
            let expect = ScalarKernel.count_equal_width(&xs, &ys);
            for backend in available_backends() {
                assert_eq!(
                    backend.kernel().count_equal_width(&xs, &ys),
                    expect,
                    "backend {backend} len {len}"
                );
            }
        }
    }

    #[test]
    fn backends_agree_on_wrapped() {
        let (small_x, _) = sample_arrays(64, 1);
        let (large, _) = sample_arrays(256, 2);
        let expect = ScalarKernel.count_wrapped(&large, &small_x);
        for backend in available_backends() {
            assert_eq!(
                backend.kernel().count_wrapped(&large, &small_x),
                expect,
                "backend {backend}"
            );
        }
    }

    #[test]
    fn backends_agree_on_batched_many() {
        let (probe, _) = sample_arrays(96, 5);
        let stores: Vec<Vec<u8>> = (0..9).map(|i| sample_arrays(96, 50 + i).0).collect();
        let cands: Vec<&[u8]> = stores.iter().map(Vec::as_slice).collect();
        let mut expect = vec![0u64; cands.len()];
        ScalarKernel.count_equal_width_many(&probe, &cands, &mut expect);
        for backend in available_backends() {
            let mut out = vec![0u64; cands.len()];
            backend
                .kernel()
                .count_equal_width_many(&probe, &cands, &mut out);
            assert_eq!(out, expect, "backend {backend}");
        }
    }

    #[test]
    fn wrapped_tiles_small_over_large() {
        let small = vec![sl(1, true), sl(2, false), sl(3, true), 0x7F];
        let mut large = small.clone();
        large.extend_from_slice(&[sl(1, false), 0x7F, sl(3, false), 0x7F]);
        // Chunk 0 vs small: lanes 0 and 2 match with indicators set,
        // lane 1 keys equal but both indicators clear, lane 3 empty
        // => 2. Chunk 1 vs small: lanes 0 and 2 match 1|0 => 2.
        for backend in available_backends() {
            assert_eq!(backend.kernel().count_wrapped(&large, &small), 2 + 2);
        }
    }

    #[test]
    #[should_panic]
    fn wrapped_requires_divisible_width() {
        let _ = ScalarKernel.count_wrapped(&[0u8; 6], &[0u8; 4]);
    }

    #[test]
    fn backends_agree_per_word() {
        let (xs, ys) = sample_arrays(4 * 512, 3);
        for (cx, cy) in xs.chunks_exact(4).zip(ys.chunks_exact(4)) {
            let x = u32::from_le_bytes(cx.try_into().unwrap());
            let y = u32::from_le_bytes(cy.try_into().unwrap());
            let expect = ScalarKernel.count_word_u32(x, y);
            for backend in available_backends() {
                assert_eq!(backend.kernel().count_word_u32(x, y), expect);
            }
        }
    }

    #[test]
    fn branchless_eq_is_eq() {
        let values = [0u64, 1, u64::MAX, 1 << 63, 0x0123_4567_89AB_CDEF];
        for &x in &values {
            for &y in &values {
                assert_eq!(branchless_eq(x, y), x == y, "x={x:#x} y={y:#x}");
                for backend in available_backends() {
                    assert_eq!(backend.kernel().value_eq(x, y), x == y);
                }
            }
        }
    }

    #[test]
    fn auto_resolves_concrete_and_names_roundtrip() {
        let resolved = KernelBackend::Auto.resolve();
        assert_ne!(resolved, KernelBackend::Auto);
        assert!(resolved.is_available());
        for backend in ALL_BACKENDS {
            assert_eq!(KernelBackend::from_name(backend.name()), Some(backend));
        }
        for backend in available_backends() {
            assert_eq!(backend.resolve(), backend);
        }
        assert_eq!(KernelBackend::from_name("AUTO"), Some(KernelBackend::Auto));
        assert_eq!(KernelBackend::from_name("nope"), None);
    }

    #[test]
    fn override_resolution_policy() {
        let widest = KernelBackend::widest_available();
        assert!(widest.is_available());
        // No override / explicit auto → widest available.
        assert_eq!(KernelBackend::resolve_override(None), widest);
        assert_eq!(KernelBackend::resolve_override(Some("auto")), widest);
        // Typos degrade to widest available, never panic.
        assert_eq!(KernelBackend::resolve_override(Some("bogus")), widest);
        // Every concrete override resolves to something available:
        // itself when the CPU has it, the widest fallback when not.
        for backend in ALL_BACKENDS {
            let resolved = KernelBackend::resolve_override(Some(backend.name()));
            assert!(resolved.is_available(), "{backend} -> {resolved}");
            if backend.is_available() {
                assert_eq!(resolved, backend);
            } else {
                assert_eq!(resolved, widest);
            }
        }
    }

    #[test]
    fn unavailable_backend_downgrades_in_resolve() {
        for backend in ALL_BACKENDS {
            let resolved = backend.resolve();
            assert!(resolved.is_available(), "{backend} -> {resolved}");
            // And the kernel it selects actually computes.
            assert_eq!(backend.kernel().count_equal_width(&[], &[]), 0);
        }
    }

    #[test]
    fn lanes_are_ordered_widest_last() {
        let lanes: Vec<usize> = ALL_BACKENDS.iter().map(|b| b.kernel().lanes()).collect();
        // `kernel()` resolves unavailable backends to the widest
        // available one, so the observed lane count is a floor of the
        // nominal one on the tail of the list; the available entries
        // must match the nominal ladder exactly. (`neon` and `sse2`
        // share a nominal width but are mutually exclusive by
        // architecture, so the available sub-sequence below is still
        // strictly increasing.)
        let nominal = [1usize, 4, 8, 16, 16, 32, 64];
        for (i, backend) in ALL_BACKENDS.iter().enumerate() {
            if backend.is_available() {
                assert_eq!(lanes[i], nominal[i], "backend {backend}");
            }
        }
        let avail: Vec<usize> = available_backends().map(|b| b.kernel().lanes()).collect();
        assert!(
            avail.windows(2).all(|w| w[0] < w[1]),
            "widest last: {avail:?}"
        );
    }

    #[test]
    fn staged_word_cost_scales_down_with_lanes() {
        // The GPU simulator's per-staged-word charge must be monotone
        // non-increasing in lane width: scalar 32, the paper's u32 8,
        // u64 8 (no staged-word pairing), neon/sse2 2, avx2 1, avx512 1
        // (the charge floors at one scalar op).
        let costs: Vec<u64> = [
            KernelBackend::Scalar,
            KernelBackend::SwarU32,
            KernelBackend::SwarU64,
        ]
        .iter()
        .map(|b| b.kernel().ops_per_staged_word())
        .collect();
        assert_eq!(costs, vec![32, 8, 8]);
        #[cfg(target_arch = "x86_64")]
        {
            assert_eq!(crate::simd::Sse2Kernel.ops_per_staged_word(), 2);
            assert_eq!(crate::simd::Avx2Kernel.ops_per_staged_word(), 1);
            assert_eq!(crate::simd::Avx512Kernel.ops_per_staged_word(), 1);
        }
        #[cfg(target_arch = "aarch64")]
        assert_eq!(crate::neon::NeonKernel.ops_per_staged_word(), 2);
    }
}
