//! Mutable delta sets layered over an immutable corpus.
//!
//! The paper's corpora are built once ([`crate::arena::BatmapArena`])
//! and never change; a serving system needs a write path. This module
//! provides the storage half of that path: a [`DeltaSet`] records the
//! *difference* between a set's live contents and its immutable base
//! payload — elements added since the snapshot and base elements
//! removed since the snapshot — and a [`DeltaRegion`] holds one
//! optional delta per corpus position, allocated lazily so an untouched
//! corpus costs one pointer per set.
//!
//! The add store starts as a sorted tidlist buffer and **promotes to an
//! owned [`Batmap`]** (via [`Batmap::insert_mut`], the in-place cuckoo
//! path of [`crate::update`]) once the set crosses the hybrid
//! representation threshold — the same density economics
//! [`ReprPolicy::Hybrid`] applies to the base corpus, applied to the
//! mutable overlay. Once promoted a delta stays a batmap (demotion
//! would churn on a workload oscillating around the threshold).
//!
//! ## Invariants
//!
//! For a base set `B` (stored payload ∪ failed insertions) with delta
//! adds `D` and removes `R`, the caller maintains:
//!
//! * `D ∩ B = ∅` — an add is always a genuinely new element;
//! * `R ⊆ B` — a remove always names a base element
//!
//! (re-adding a removed base element *shrinks `R`* instead of growing
//! `D`, and removing a delta add shrinks `D` instead of growing `R` —
//! [`DeltaRegion::apply_add`] / [`DeltaRegion::apply_remove`] encode
//! exactly this). The live set is then `M = (B \ R) ∪ D`, with
//! `|M| = |B| − |R| + |D|` and membership decided by one delta probe
//! before falling back to the base.
//!
//! ## Exact layered pair counts
//!
//! [`layered_pair_count`] turns a *base×base* intersection count `raw =
//! |B_a ∩ B_b|` — produced by the SIMD sweeps over the immutable arena,
//! which is the whole point of layering — into the exact live count
//! `|M_a ∩ M_b|` by inclusion–exclusion over the (small) deltas:
//!
//! ```text
//! |M_a ∩ M_b| = raw − |B_a ∩ R_b| + |B_a ∩ D_b|
//!                   − Σ_{x∈R_a} [x ∈ M_b] + Σ_{x∈D_a} [x ∈ M_b]
//! ```
//!
//! Every sum iterates a delta and probes the other side in O(1)-ish
//! (batmap/bitmap probe or binary search), so the correction costs
//! O(|deltas|), not O(|sets|).

use crate::repr::{ReprPolicy, SetRepr};
use crate::{Batmap, ParamsHandle};

/// The add store of one [`DeltaSet`]: a sorted tidlist while tiny, an
/// owned mutable [`Batmap`] once the hybrid threshold says the batmap
/// layout is the cheaper home.
#[derive(Debug, Clone)]
enum AddStore {
    /// Strictly ascending element buffer.
    Tidlist(Vec<u32>),
    /// Promoted store, mutated in place via [`Batmap::insert_mut`] /
    /// [`Batmap::remove_mut`].
    Batmap(Box<Batmap>),
}

/// The mutable difference between one set's live contents and its
/// immutable base payload. See the module docs for the invariants the
/// caller maintains.
#[derive(Debug, Clone)]
pub struct DeltaSet {
    adds: AddStore,
    /// Base elements removed since the snapshot, strictly ascending.
    removes: Vec<u32>,
}

impl Default for DeltaSet {
    fn default() -> Self {
        DeltaSet {
            adds: AddStore::Tidlist(Vec::new()),
            removes: Vec::new(),
        }
    }
}

impl DeltaSet {
    /// Number of added elements.
    pub fn adds_len(&self) -> usize {
        match &self.adds {
            AddStore::Tidlist(v) => v.len(),
            AddStore::Batmap(b) => b.len(),
        }
    }

    /// Number of removed base elements.
    pub fn removes_len(&self) -> usize {
        self.removes.len()
    }

    /// True when this delta records no difference at all.
    pub fn is_noop(&self) -> bool {
        self.adds_len() == 0 && self.removes.is_empty()
    }

    /// Is `x` among the added elements?
    pub fn adds_contain(&self, x: u32) -> bool {
        match &self.adds {
            AddStore::Tidlist(v) => v.binary_search(&x).is_ok(),
            AddStore::Batmap(b) => b.contains(x),
        }
    }

    /// Is `x` among the removed base elements?
    pub fn removes_contain(&self, x: u32) -> bool {
        self.removes.binary_search(&x).is_ok()
    }

    /// The added elements, ascending (allocates; deltas are small).
    pub fn adds_elements(&self) -> Vec<u32> {
        match &self.adds {
            AddStore::Tidlist(v) => v.clone(),
            AddStore::Batmap(b) => {
                let mut out = b.elements();
                out.sort_unstable();
                out
            }
        }
    }

    /// The removed base elements, ascending.
    pub fn removes_elements(&self) -> &[u32] {
        &self.removes
    }

    /// True when the delta's add store has been promoted to a batmap.
    pub fn is_promoted(&self) -> bool {
        matches!(self.adds, AddStore::Batmap(_))
    }

    /// Record `x` as added; returns whether it was new. Promotes the
    /// tidlist buffer to an owned batmap when the grown set crosses the
    /// hybrid threshold.
    fn insert_add(&mut self, params: &ParamsHandle, x: u32) -> bool {
        match &mut self.adds {
            AddStore::Tidlist(v) => {
                let Err(at) = v.binary_search(&x) else {
                    return false;
                };
                v.insert(at, x);
                if promote_to_batmap(params, v.len()) {
                    let mut bm = Batmap::build_sorted(params.clone(), &[]).batmap;
                    for &e in v.iter() {
                        bm.insert_mut(e);
                    }
                    self.adds = AddStore::Batmap(Box::new(bm));
                }
                true
            }
            AddStore::Batmap(b) => b.insert_mut(x) != crate::UpdateOutcome::AlreadyPresent,
        }
    }

    /// Un-record an added element; returns whether it was present.
    fn remove_add(&mut self, x: u32) -> bool {
        match &mut self.adds {
            AddStore::Tidlist(v) => {
                let Ok(at) = v.binary_search(&x) else {
                    return false;
                };
                v.remove(at);
                true
            }
            AddStore::Batmap(b) => b.remove_mut(x),
        }
    }

    fn insert_remove(&mut self, x: u32) -> bool {
        let Err(at) = self.removes.binary_search(&x) else {
            return false;
        };
        self.removes.insert(at, x);
        true
    }

    fn remove_remove(&mut self, x: u32) -> bool {
        let Ok(at) = self.removes.binary_search(&x) else {
            return false;
        };
        self.removes.remove(at);
        true
    }
}

/// Should an add store of `len` elements live as a batmap rather than a
/// tidlist buffer? Mirrors the hybrid storage policy: promote exactly
/// when [`ReprPolicy::Hybrid`] would no longer pick the tidlist layout.
fn promote_to_batmap(params: &ParamsHandle, len: usize) -> bool {
    let policy = ReprPolicy::Hybrid;
    policy.choose(len, params.m(), params.range_for(len)) != SetRepr::Tidlist
}

/// One optional [`DeltaSet`] per corpus position, allocated on first
/// touch. Indexed by whatever position space the caller uses for its
/// base corpus (the ingest layer uses sorted positions).
#[derive(Debug, Clone)]
pub struct DeltaRegion {
    params: ParamsHandle,
    sets: Vec<Option<Box<DeltaSet>>>,
    /// Total `adds + removes` across all sets: the number of membership
    /// differences from the base snapshot.
    memberships: u64,
}

impl DeltaRegion {
    /// An empty region over `n` positions of the given universe.
    pub fn new(params: ParamsHandle, n: usize) -> Self {
        DeltaRegion {
            params,
            sets: vec![None; n],
            memberships: 0,
        }
    }

    /// Positions covered (the base corpus' real set count).
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when no position has any recorded difference.
    pub fn is_empty(&self) -> bool {
        self.memberships == 0
    }

    /// Total membership differences (`adds + removes`) from the base.
    pub fn memberships(&self) -> u64 {
        self.memberships
    }

    /// The delta at position `s`, if one was ever touched.
    pub fn get(&self, s: usize) -> Option<&DeltaSet> {
        self.sets[s].as_deref()
    }

    /// Drop every recorded difference (after a compaction folded them
    /// into a fresh base).
    pub fn clear(&mut self) {
        for slot in &mut self.sets {
            *slot = None;
        }
        self.memberships = 0;
    }

    /// Record "the live set at `s` gains `x`". `in_base` says whether
    /// the base set contains `x` (stored ∪ failed): a re-add of a
    /// removed base element shrinks the remove list; a genuinely new
    /// element grows the add store.
    ///
    /// # Panics
    /// Panics if the add is not a real membership change — `in_base`
    /// without a recorded remove, or a duplicate add — because the
    /// caller (which owns the live-membership ground truth) should have
    /// rejected it.
    pub fn apply_add(&mut self, s: usize, x: u32, in_base: bool) {
        let set = self.sets[s].get_or_insert_with(Default::default);
        let changed = if in_base {
            set.remove_remove(x)
        } else {
            set.insert_add(&self.params, x)
        };
        assert!(changed, "add of {x} at position {s} is not a change");
        if set.is_noop() {
            self.sets[s] = None;
        }
        self.memberships = if in_base {
            self.memberships - 1
        } else {
            self.memberships + 1
        };
    }

    /// Record "the live set at `s` loses `x`". Removing a delta add
    /// shrinks the add store; removing a base element grows the remove
    /// list.
    ///
    /// # Panics
    /// Panics if the remove is not a real membership change (see
    /// [`DeltaRegion::apply_add`]).
    pub fn apply_remove(&mut self, s: usize, x: u32, in_base: bool) {
        let set = self.sets[s].get_or_insert_with(Default::default);
        let (changed, grew) = if set.adds_contain(x) {
            (set.remove_add(x), false)
        } else {
            assert!(in_base, "remove of {x} at position {s} is not a change");
            (set.insert_remove(x), true)
        };
        assert!(changed, "remove of {x} at position {s} is not a change");
        if set.is_noop() {
            self.sets[s] = None;
        }
        self.memberships = if grew {
            self.memberships + 1
        } else {
            self.memberships - 1
        };
    }

    /// The delta's verdict on `x ∈ live set at s`: `Some(true)` for a
    /// recorded add, `Some(false)` for a recorded remove, `None` when
    /// the base decides.
    pub fn member_delta(&self, s: usize, x: u32) -> Option<bool> {
        let set = self.get(s)?;
        if set.adds_contain(x) {
            Some(true)
        } else if set.removes_contain(x) {
            Some(false)
        } else {
            None
        }
    }

    /// `|live set| − |base set|` at position `s`.
    pub fn count_delta(&self, s: usize) -> i64 {
        self.get(s)
            .map_or(0, |d| d.adds_len() as i64 - d.removes_len() as i64)
    }
}

/// Exact live pair count from a base-only count plus two deltas (see
/// the module docs for the derivation). `raw` must be the exact count
/// of the *base* sets `|B_a ∩ B_b|` — stored payloads with the
/// failed-insertion corrections already applied — and `base_a` /
/// `base_b` must answer membership against those same base sets.
pub fn layered_pair_count(
    raw: u64,
    da: Option<&DeltaSet>,
    db: Option<&DeltaSet>,
    base_a: impl Fn(u32) -> bool,
    base_b: impl Fn(u32) -> bool,
) -> u64 {
    let mut total = raw as i64;
    // `x ∈ M_b = (B_b \ R_b) ∪ D_b`, probing the delta before the base.
    let live_b = |x: u32| -> bool {
        if let Some(d) = db {
            if d.adds_contain(x) {
                return true;
            }
            if d.removes_contain(x) {
                return false;
            }
        }
        base_b(x)
    };
    if let Some(d) = db {
        for &x in d.removes_elements() {
            total -= base_a(x) as i64;
        }
        for x in d.adds_elements() {
            total += base_a(x) as i64;
        }
    }
    if let Some(d) = da {
        for &x in d.removes_elements() {
            total -= live_b(x) as i64;
        }
        for x in d.adds_elements() {
            total += live_b(x) as i64;
        }
    }
    debug_assert!(total >= 0, "layered correction went negative");
    total.max(0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BatmapParams;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn params(m: u64) -> ParamsHandle {
        Arc::new(BatmapParams::new(m, 0xDE17A))
    }

    /// Model of one layered set: base and live contents as BTreeSets.
    struct Model {
        base: BTreeSet<u32>,
        live: BTreeSet<u32>,
    }

    impl Model {
        fn new(base: &[u32]) -> Model {
            let base: BTreeSet<u32> = base.iter().copied().collect();
            Model {
                live: base.clone(),
                base,
            }
        }

        fn add(&mut self, region: &mut DeltaRegion, s: usize, x: u32) {
            if self.live.insert(x) {
                region.apply_add(s, x, self.base.contains(&x));
            }
        }

        fn remove(&mut self, region: &mut DeltaRegion, s: usize, x: u32) {
            if self.live.remove(&x) {
                region.apply_remove(s, x, self.base.contains(&x));
            }
        }
    }

    #[test]
    fn membership_and_counts_track_the_model() {
        let p = params(10_000);
        let mut region = DeltaRegion::new(p, 1);
        let base: Vec<u32> = (0..200).map(|i| i * 13).collect();
        let mut model = Model::new(&base);
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..4000 {
            let x = (next() % 10_000) as u32;
            if next() % 3 == 0 {
                model.remove(&mut region, 0, x);
            } else {
                model.add(&mut region, 0, x);
            }
        }
        let count = model.base.len() as i64 + region.count_delta(0);
        assert_eq!(count, model.live.len() as i64);
        for x in 0..10_000u32 {
            let member = region
                .member_delta(0, x)
                .unwrap_or_else(|| model.base.contains(&x));
            assert_eq!(member, model.live.contains(&x), "element {x}");
        }
        let memberships = region.memberships();
        let diff = model.live.symmetric_difference(&model.base).count() as u64;
        assert_eq!(memberships, diff);
    }

    #[test]
    fn add_store_promotes_to_batmap_and_stays_exact() {
        let p = params(100_000);
        let mut region = DeltaRegion::new(p.clone(), 1);
        let mut model = Model::new(&[]);
        // Far past any tidlist threshold: the store must promote.
        for x in (0..4000u32).map(|i| (i * 37) % 100_000) {
            model.add(&mut region, 0, x);
        }
        let delta = region.get(0).expect("delta exists");
        assert!(delta.is_promoted(), "4000 adds must promote to a batmap");
        assert_eq!(delta.adds_len(), model.live.len());
        assert_eq!(
            delta.adds_elements(),
            model.live.iter().copied().collect::<Vec<_>>()
        );
        // Mutations keep working through the promoted store.
        for x in (0..2000u32).map(|i| (i * 37) % 100_000) {
            model.remove(&mut region, 0, x);
        }
        let delta = region.get(0).expect("delta exists");
        assert_eq!(delta.adds_len(), model.live.len());
        for &x in &model.live {
            assert!(delta.adds_contain(x));
        }
    }

    #[test]
    fn noop_deltas_are_dropped() {
        let p = params(1000);
        let mut region = DeltaRegion::new(p, 2);
        region.apply_add(1, 42, false);
        assert!(!region.is_empty());
        region.apply_remove(1, 42, false);
        assert!(region.is_empty());
        assert!(region.get(1).is_none(), "round-tripped delta freed");
        // Remove-then-re-add of a base element likewise cancels.
        region.apply_remove(0, 7, true);
        region.apply_add(0, 7, true);
        assert!(region.is_empty());
    }

    /// Brute-force oracle for the layered pair formula across add/remove
    /// overlap cases, including shared elements in both deltas and
    /// self-intersection.
    #[test]
    fn layered_pair_count_matches_brute_force() {
        let p = params(512);
        let mut state = 0xABCDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..50 {
            let mut region = DeltaRegion::new(p.clone(), 2);
            let base_a: Vec<u32> = (0..512).filter(|_| next() % 3 == 0).collect();
            let base_b: Vec<u32> = (0..512).filter(|_| next() % 3 == 0).collect();
            let mut ma = Model::new(&base_a);
            let mut mb = Model::new(&base_b);
            for _ in 0..200 {
                let x = (next() % 512) as u32;
                match next() % 4 {
                    0 => ma.add(&mut region, 0, x),
                    1 => ma.remove(&mut region, 0, x),
                    2 => mb.add(&mut region, 1, x),
                    _ => mb.remove(&mut region, 1, x),
                }
            }
            let raw = ma.base.intersection(&mb.base).count() as u64;
            let got = layered_pair_count(
                raw,
                region.get(0),
                region.get(1),
                |x| ma.base.contains(&x),
                |x| mb.base.contains(&x),
            );
            let expect = ma.live.intersection(&mb.live).count() as u64;
            assert_eq!(got, expect, "trial {trial}");
            // Self-intersection: |M ∩ M| = |M|.
            let self_raw = ma.base.len() as u64;
            let self_got = layered_pair_count(
                self_raw,
                region.get(0),
                region.get(0),
                |x| ma.base.contains(&x),
                |x| ma.base.contains(&x),
            );
            assert_eq!(self_got, ma.live.len() as u64, "trial {trial} self");
        }
    }
}
