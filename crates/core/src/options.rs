//! Unified engine configuration: one builder for the engine tuning
//! knobs, one documented resolution order, and the only place in the
//! workspace that reads the `BATMAP_*` environment variables.
//!
//! Before this module the configuration surface was sprawled across
//! three env vars (`BATMAP_KERNEL` / `BATMAP_THREADS` / `BATMAP_REPR`),
//! per-field `BatmapParams::with_*` setters, `MinerConfig` fields, and
//! hand-rolled per-binary flags. [`EngineOptions`] folds them into one
//! value with a single rule, applied independently per knob:
//!
//! 1. **explicit** — a concrete value set on the builder wins
//!    unconditionally (`EngineOptions::auto().kernel(KernelBackend::Scalar)`);
//! 2. **environment** — a knob left at `Auto` consults its `BATMAP_*`
//!    variable (read once per process, cached), through the same pure
//!    `resolve_override` rules the knobs have always used;
//! 3. **auto** — with no override either, the knob picks its documented
//!    default: the widest kernel this CPU supports, the ambient rayon
//!    pool, the legacy pure-batmap representation.
//!
//! Everything configurable — `MinerConfig`, `LevelwiseConfig`, the
//! bench `HarnessConfig`, the figure binaries, and the snapshot server —
//! consumes an `EngineOptions`; the old per-field setters survive only
//! as `#[deprecated]` shims.

use crate::arena::SnapshotLoad;
use crate::kernel::KernelBackend;
use crate::parallel::Parallelism;
use crate::repr::ReprPolicy;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// The engine tuning knobs as one value.
///
/// Construct with [`EngineOptions::auto`] and pin individual knobs with
/// the consuming builder methods; every field is also public for
/// struct-literal updates and pattern matching.
///
/// ```
/// use batmap::{EngineOptions, KernelBackend, Parallelism, ReprPolicy};
///
/// let opts = EngineOptions::auto()
///     .kernel(KernelBackend::SwarU64)
///     .threads(Parallelism::Serial)
///     .repr(ReprPolicy::Hybrid);
/// assert_eq!(opts.kernel, KernelBackend::SwarU64);
/// // Knobs left at `Auto` defer to the environment, then to the
/// // documented defaults — nothing is resolved until first use.
/// assert_eq!(EngineOptions::auto(), EngineOptions::default());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EngineOptions {
    /// Match-count backend (`BATMAP_KERNEL` when left at `Auto`).
    #[serde(default)]
    pub kernel: KernelBackend,
    /// Host-parallelism knob (`BATMAP_THREADS` when left at `Auto`).
    #[serde(default)]
    pub threads: Parallelism,
    /// Storage-representation policy (`BATMAP_REPR` when left at
    /// `Auto`).
    #[serde(default)]
    pub repr: ReprPolicy,
    /// Snapshot load path (`BATMAP_LOAD` when left at `Auto`).
    #[serde(default)]
    pub load: SnapshotLoad,
}

/// Usage text for the shared CLI flags, for binaries that fold
/// [`EngineOptions::set_flag`] into their `--help` output.
pub const FLAGS_USAGE: &str = "\
  --kernel <auto|scalar|swar32|swar64|neon|sse2|avx2|avx512>   match-count backend (default: auto)
  --threads <auto|serial|N>                        host parallelism (default: auto)
  --repr <auto|batmap|bitmap|tidlist|hybrid>       storage representation (default: auto)
  --load <auto|buffered|mmap>                      snapshot load path (default: auto)";

impl EngineOptions {
    /// All three knobs at `Auto`: environment overrides apply, then the
    /// documented defaults. This is the canonical starting point.
    pub fn auto() -> Self {
        Self::default()
    }

    /// Pin the match-count backend (consuming builder).
    pub fn kernel(mut self, kernel: KernelBackend) -> Self {
        self.kernel = kernel;
        self
    }

    /// Pin the host-parallelism knob (consuming builder).
    pub fn threads(mut self, threads: Parallelism) -> Self {
        self.threads = threads;
        self
    }

    /// Pin the storage-representation policy (consuming builder).
    pub fn repr(mut self, repr: ReprPolicy) -> Self {
        self.repr = repr;
        self
    }

    /// Pin the snapshot load path (consuming builder).
    pub fn load(mut self, load: SnapshotLoad) -> Self {
        self.load = load;
        self
    }

    /// Resolve every knob to its concrete value under the documented
    /// order (explicit > env > auto). The returned options contain no
    /// `Auto` kernel or repr; `threads` resolves to `Serial` /
    /// `Threads(n)` when anything pins a count and stays `Auto` when
    /// the ambient pool should decide.
    pub fn resolve(self) -> Self {
        // Fault-point arming rides the same explicit>env>auto rule:
        // sites armed explicitly through `hpcutil::faultpoint::arm`
        // always win (arming replaces), and a knob nobody pins falls
        // back to the env spec, applied once per process on the first
        // resolve. There is no `Auto` tier — disarmed is the default.
        arm_faultpoints_from_env();
        EngineOptions {
            kernel: self.kernel.resolve(),
            threads: match self.threads.pinned() {
                Some(n) => Parallelism::threads(n.max(1)),
                None => Parallelism::Auto,
            },
            repr: self.repr.resolve(),
            load: self.load.resolve(),
        }
    }

    /// Handle one `--flag value` pair if it is one of the shared engine
    /// flags (`--kernel`, `--threads`, `--repr`, `--load`). Returns
    /// `Ok(true)`
    /// when consumed, `Ok(false)` when the flag is not an engine flag
    /// (the caller keeps parsing), and `Err` with a user-facing message
    /// for an engine flag with an invalid value.
    pub fn set_flag(&mut self, flag: &str, value: &str) -> Result<bool, String> {
        match flag {
            "--kernel" => {
                self.kernel = KernelBackend::from_name(value)
                    .ok_or_else(|| format!("unknown kernel backend `{value}`"))?;
                Ok(true)
            }
            "--threads" => {
                self.threads = Parallelism::from_name(value)
                    .ok_or_else(|| format!("invalid thread count `{value}`"))?;
                Ok(true)
            }
            "--repr" => {
                self.repr = ReprPolicy::from_name(value)
                    .ok_or_else(|| format!("unknown repr policy `{value}`"))?;
                Ok(true)
            }
            "--load" => {
                self.load = SnapshotLoad::from_name(value)
                    .ok_or_else(|| format!("unknown snapshot load path `{value}`"))?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

/// The cached raw `BATMAP_KERNEL` value, if the variable is set.
///
/// This module is the only place in the workspace that reads the
/// `BATMAP_*` environment (the acceptance grep for the options redesign
/// enforces it); the knobs' `resolve()` methods and any test that needs
/// to know whether an override is active route through these accessors,
/// so the read-once caching semantics live in exactly one spot.
pub fn kernel_env() -> Option<&'static str> {
    static VAR: OnceLock<Option<String>> = OnceLock::new();
    VAR.get_or_init(|| std::env::var("BATMAP_KERNEL").ok())
        .as_deref()
}

/// The cached raw `BATMAP_THREADS` value, if the variable is set.
pub fn threads_env() -> Option<&'static str> {
    static VAR: OnceLock<Option<String>> = OnceLock::new();
    VAR.get_or_init(|| std::env::var("BATMAP_THREADS").ok())
        .as_deref()
}

/// The cached raw `BATMAP_REPR` value, if the variable is set.
pub fn repr_env() -> Option<&'static str> {
    static VAR: OnceLock<Option<String>> = OnceLock::new();
    VAR.get_or_init(|| std::env::var("BATMAP_REPR").ok())
        .as_deref()
}

/// The cached raw `BATMAP_LOAD` value, if the variable is set.
pub fn load_env() -> Option<&'static str> {
    static VAR: OnceLock<Option<String>> = OnceLock::new();
    VAR.get_or_init(|| std::env::var("BATMAP_LOAD").ok())
        .as_deref()
}

/// The cached raw `BATMAP_TUNING` value, if the variable is set: a
/// path to a [`crate::tuning::TuningProfile`] JSON file written by
/// `batmap-tune`, loaded once per process by
/// [`crate::tuning::TuningProfile::current`].
pub fn tuning_env() -> Option<&'static str> {
    static VAR: OnceLock<Option<String>> = OnceLock::new();
    VAR.get_or_init(|| std::env::var("BATMAP_TUNING").ok())
        .as_deref()
}

/// The cached raw `BATMAP_FAULTPOINTS` value, if the variable is set:
/// a `;`-separated `site=action` spec (see [`crate::fault`]) armed once
/// per process by the first [`EngineOptions::resolve`].
pub fn faultpoints_env() -> Option<&'static str> {
    static VAR: OnceLock<Option<String>> = OnceLock::new();
    VAR.get_or_init(|| std::env::var("BATMAP_FAULTPOINTS").ok())
        .as_deref()
}

/// Arm the fault sites named by `BATMAP_FAULTPOINTS`, once per process.
/// A malformed spec aborts loudly: silently ignoring it would let a
/// chaos run pass vacuously with nothing armed.
fn arm_faultpoints_from_env() {
    static ARMED: OnceLock<()> = OnceLock::new();
    ARMED.get_or_init(|| {
        if let Some(spec) = faultpoints_env() {
            if let Err(err) = crate::fault::arm_from_spec(spec) {
                panic!("invalid BATMAP_FAULTPOINTS: {err}");
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_pins_individual_knobs() {
        let opts = EngineOptions::auto()
            .kernel(KernelBackend::Scalar)
            .threads(Parallelism::Threads(4))
            .repr(ReprPolicy::Hybrid);
        assert_eq!(opts.kernel, KernelBackend::Scalar);
        assert_eq!(opts.threads, Parallelism::Threads(4));
        assert_eq!(opts.repr, ReprPolicy::Hybrid);
        // Unset knobs stay Auto.
        let partial = EngineOptions::auto().repr(ReprPolicy::Bitmap);
        assert_eq!(partial.kernel, KernelBackend::Auto);
        assert_eq!(partial.threads, Parallelism::Auto);
        assert_eq!(partial.load, SnapshotLoad::Auto);
        let pinned = EngineOptions::auto().load(SnapshotLoad::Buffered);
        assert_eq!(pinned.load, SnapshotLoad::Buffered);
    }

    #[test]
    fn explicit_beats_env_beats_auto() {
        // Explicit concrete knobs resolve to themselves regardless of
        // the environment (scalar is available everywhere).
        let explicit = EngineOptions::auto()
            .kernel(KernelBackend::Scalar)
            .threads(Parallelism::Serial)
            .repr(ReprPolicy::Tidlist)
            .resolve();
        assert_eq!(explicit.kernel, KernelBackend::Scalar);
        assert_eq!(explicit.threads, Parallelism::Serial);
        assert_eq!(explicit.repr, ReprPolicy::Tidlist);
        // Auto knobs resolve through the same pure override rules the
        // env path uses, fed with the cached variables.
        let auto = EngineOptions::auto().resolve();
        assert_eq!(auto.kernel, KernelBackend::resolve_override(kernel_env()));
        assert_eq!(auto.repr, ReprPolicy::resolve_override(repr_env()));
        assert_eq!(auto.load, SnapshotLoad::resolve_override(load_env()));
        assert_ne!(auto.kernel, KernelBackend::Auto);
        assert_ne!(auto.repr, ReprPolicy::Auto);
        assert_ne!(auto.load, SnapshotLoad::Auto);
    }

    #[test]
    fn flag_parsing_consumes_engine_flags_only() {
        let mut opts = EngineOptions::auto();
        assert_eq!(opts.set_flag("--kernel", "swar64"), Ok(true));
        assert_eq!(opts.set_flag("--threads", "4"), Ok(true));
        assert_eq!(opts.set_flag("--repr", "hybrid"), Ok(true));
        assert_eq!(opts.set_flag("--load", "buffered"), Ok(true));
        assert_eq!(opts.kernel, KernelBackend::SwarU64);
        assert_eq!(opts.threads, Parallelism::Threads(4));
        assert_eq!(opts.repr, ReprPolicy::Hybrid);
        assert_eq!(opts.load, SnapshotLoad::Buffered);
        assert_eq!(opts.set_flag("--scale", "big"), Ok(false));
        assert!(opts.set_flag("--kernel", "cuda9000").is_err());
        assert!(opts.set_flag("--threads", "many").is_err());
        assert!(opts.set_flag("--repr", "sparse").is_err());
        assert!(opts.set_flag("--load", "teleport").is_err());
    }

    #[test]
    fn serde_roundtrip_uses_knob_names() {
        let opts = EngineOptions::auto()
            .kernel(KernelBackend::Sse2)
            .threads(Parallelism::Threads(8))
            .repr(ReprPolicy::Hybrid);
        let text = serde_json::to_string(&opts).unwrap();
        assert!(text.contains("\"sse2\""), "{text}");
        assert!(text.contains("\"8\""), "{text}");
        assert!(text.contains("\"hybrid\""), "{text}");
        let back: EngineOptions = serde_json::from_str(&text).unwrap();
        assert_eq!(back, opts);
    }
}
