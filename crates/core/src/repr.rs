//! Per-set storage representations and the density-based selection
//! policy behind the hybrid storage layer.
//!
//! The paper's own density analysis (Fig. 8) shows where the batmap
//! layout loses: **dense** sets are cheaper as plain uncompressed
//! bitmaps (one bit per transaction id beats `3·r ≥ 6·|S|` slot bytes
//! once `|S|` approaches `m`), and **very sparse** sets are cheaper as
//! raw sorted tidlists (the `r₀` compression floor makes the smallest
//! batmap `3·r₀` bytes — 192 bytes at the GPU shift — while a
//! three-element tidlist is 12). [`SetRepr`] names the three layouts a
//! corpus may mix, [`ReprPolicy`] is the runtime knob that decides which
//! each set gets (mirroring [`crate::kernel::KernelBackend`]'s
//! resolve/downgrade style, with the `BATMAP_REPR` environment
//! variable), and [`SetView`] is the zero-copy view the mixed
//! intersection kernels in [`crate::intersect`] consume.
//!
//! Selection thresholds (the [`ReprPolicy::Hybrid`] rule, applied per
//! set with `len = |S|`, universe size `m`, and the batmap range
//! `r = range_for(len)`):
//!
//! | chosen repr | condition | width (bytes) |
//! |---|---|---|
//! | [`SetRepr::Bitmap`] | `len·32 ≥ m` (density ≥ 1/32) | `⌈m/64⌉·8` |
//! | [`SetRepr::Tidlist`] | `4·(4·len) ≤ 3·r` (≥ 4× smaller than the batmap) | `4·len` |
//! | [`SetRepr::Batmap`] | otherwise | `3·r` |
//!
//! The tidlist rule only fires at the `r₀` floor (for `r > r₀`,
//! `3·r < 16·len` always), so it captures exactly the sparse tail the
//! floor penalizes; the bitmap rule's 1/32 cut-off is conservative —
//! the bitmap is already *smaller* than the batmap at density 1/48.
//! Counts never depend on the representation (every layout here is
//! exact), so the policy is a pure speed/space choice — which is why,
//! like the kernel backend, it is runtime data and excluded from the
//! parameter fingerprint.

use crate::arena::BatmapRef;
use crate::batmap::AsSlots;
use crate::params::{ParamsHandle, TABLES};
use std::fmt;
use std::sync::OnceLock;

/// Storage representation of one set inside an arena, recorded per set
/// in the directory and persisted in the snapshot format (tag values
/// are part of the format: 0 = batmap, 1 = uncompressed bitmap,
/// 2 = tidlist; WAH or other compressed layouts would extend the same
/// tag space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetRepr {
    /// The paper's 2-of-3 positional layout (`3·r` slot bytes).
    Batmap,
    /// Uncompressed bitmap over the universe: bit `x` set iff `x ∈ S`,
    /// padded to whole 64-bit words (`⌈m/64⌉·8` bytes).
    Bitmap,
    /// Sorted, duplicate-free tidlist of little-endian `u32`s
    /// (`4·len` bytes).
    Tidlist,
}

/// Number of representations (histogram arrays index by tag).
pub const REPR_COUNT: usize = 3;

impl SetRepr {
    /// Stable snapshot tag of this representation.
    pub fn tag(self) -> u64 {
        match self {
            SetRepr::Batmap => 0,
            SetRepr::Bitmap => 1,
            SetRepr::Tidlist => 2,
        }
    }

    /// Representation for a snapshot tag (`None` for tags this build
    /// does not know — the snapshot loader refuses such files).
    pub fn from_tag(tag: u64) -> Option<Self> {
        match tag {
            0 => Some(SetRepr::Batmap),
            1 => Some(SetRepr::Bitmap),
            2 => Some(SetRepr::Tidlist),
            _ => None,
        }
    }

    /// Stable human-readable name (bench labels, histogram logs).
    pub fn name(self) -> &'static str {
        match self {
            SetRepr::Batmap => "batmap",
            SetRepr::Bitmap => "bitmap",
            SetRepr::Tidlist => "tidlist",
        }
    }
}

impl fmt::Display for SetRepr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Width in bytes of an uncompressed bitmap over universe size `m`
/// (whole 64-bit words, so the popcount-AND sweep needs no tail path).
pub fn bitmap_width_bytes(m: u64) -> usize {
    (m.div_ceil(64) * 8) as usize
}

/// Width in bytes of a tidlist of `len` elements.
pub fn tidlist_width_bytes(len: usize) -> usize {
    4 * len
}

/// Bitmap is chosen at density ≥ `1/BITMAP_DENSITY_DIV` (`len·32 ≥ m`).
pub const BITMAP_DENSITY_DIV: u64 = 32;

/// Tidlist is chosen when it is at least this many times smaller than
/// the batmap it replaces (`TIDLIST_SHRINK_MUL · 4·len ≤ 3·r`).
pub const TIDLIST_SHRINK_MUL: usize = 4;

/// Runtime storage-representation policy.
///
/// Carried by [`crate::BatmapParams`] (and the miner configuration), so
/// the choice travels with the corpus it applies to. `Auto` defers the
/// decision to [`ReprPolicy::resolve`], which honours the `BATMAP_REPR`
/// environment override and otherwise keeps the legacy pure-batmap
/// behaviour — hybrid storage is opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReprPolicy {
    /// Honour the `BATMAP_REPR` environment override; absent one, keep
    /// the legacy pure-batmap behaviour.
    #[default]
    Auto,
    /// Every set is a batmap (the legacy corpus; required by the GPU
    /// engine).
    Batmap,
    /// Every set is an uncompressed bitmap (ablation/testing mode).
    Bitmap,
    /// Every set is a sorted tidlist (ablation/testing mode).
    Tidlist,
    /// Pick the cheapest representation per set by the density rule in
    /// the module docs.
    Hybrid,
}

/// The concrete (non-`Auto`) policies, for test and bench axes.
pub const ALL_REPR_POLICIES: [ReprPolicy; 4] = [
    ReprPolicy::Batmap,
    ReprPolicy::Bitmap,
    ReprPolicy::Tidlist,
    ReprPolicy::Hybrid,
];

impl ReprPolicy {
    /// Parse a policy name as used by `BATMAP_REPR` and bench labels.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(ReprPolicy::Auto),
            "batmap" => Some(ReprPolicy::Batmap),
            "bitmap" => Some(ReprPolicy::Bitmap),
            "tidlist" => Some(ReprPolicy::Tidlist),
            "hybrid" => Some(ReprPolicy::Hybrid),
            _ => None,
        }
    }

    /// Stable name of this policy.
    pub fn name(self) -> &'static str {
        match self {
            ReprPolicy::Auto => "auto",
            ReprPolicy::Batmap => "batmap",
            ReprPolicy::Bitmap => "bitmap",
            ReprPolicy::Tidlist => "tidlist",
            ReprPolicy::Hybrid => "hybrid",
        }
    }

    /// The pure resolution rule behind [`ReprPolicy::resolve`]: map an
    /// optional `BATMAP_REPR` override string to a concrete policy.
    /// Exposed so the resolution policy is unit testable without
    /// mutating process environment.
    ///
    /// * `None` / `Some("auto")` → [`ReprPolicy::Batmap`] (the legacy
    ///   behaviour; hybrid storage is opt-in);
    /// * a valid policy name → that policy;
    /// * an invalid name → [`ReprPolicy::Batmap`], with a warning
    ///   (never abort someone else's run over an env var, but don't let
    ///   a typo silently mine the wrong experiment either).
    pub fn resolve_override(var: Option<&str>) -> ReprPolicy {
        match var.map(ReprPolicy::from_name) {
            None | Some(Some(ReprPolicy::Auto)) => ReprPolicy::Batmap,
            Some(Some(concrete)) => concrete,
            Some(None) => {
                eprintln!(
                    "warning: ignoring invalid BATMAP_REPR={} \
                     (expected auto|batmap|bitmap|tidlist|hybrid); using batmap",
                    var.unwrap_or_default()
                );
                ReprPolicy::Batmap
            }
        }
    }

    /// Resolve to a concrete policy. `Auto` consults the `BATMAP_REPR`
    /// environment variable once (cached) and otherwise stays with the
    /// legacy pure-batmap behaviour; a concrete policy resolves to
    /// itself (every representation is available on every host — unlike
    /// kernels, there is nothing to downgrade).
    pub fn resolve(self) -> ReprPolicy {
        if self != ReprPolicy::Auto {
            return self;
        }
        static AUTO: OnceLock<ReprPolicy> = OnceLock::new();
        *AUTO.get_or_init(|| ReprPolicy::resolve_override(crate::options::repr_env()))
    }

    /// The representation this policy assigns to one set of `len`
    /// elements over a universe of size `m` whose batmap range would be
    /// `range` (see the threshold table in the module docs). `Auto`
    /// resolves first.
    pub fn choose(self, len: usize, m: u64, range: u64) -> SetRepr {
        match self {
            ReprPolicy::Auto => self.resolve().choose(len, m, range),
            ReprPolicy::Batmap => SetRepr::Batmap,
            ReprPolicy::Bitmap => SetRepr::Bitmap,
            ReprPolicy::Tidlist => SetRepr::Tidlist,
            ReprPolicy::Hybrid => {
                if (len as u64).saturating_mul(BITMAP_DENSITY_DIV) >= m {
                    SetRepr::Bitmap
                } else if TIDLIST_SHRINK_MUL * tidlist_width_bytes(len)
                    <= (TABLES as u64 * range) as usize
                {
                    SetRepr::Tidlist
                } else {
                    SetRepr::Batmap
                }
            }
        }
    }
}

impl fmt::Display for ReprPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// Serialized as the policy name, like the kernel backend, so stored
// universe parameters stay readable and forward-compatible.
impl serde::Serialize for ReprPolicy {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self.name())
    }
}

impl<'de> serde::Deserialize<'de> for ReprPolicy {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let name = String::deserialize(d)?;
        ReprPolicy::from_name(&name)
            .ok_or_else(|| serde::de::Error::custom(format!("unknown repr policy `{name}`")))
    }
}

/// Zero-copy view of one uncompressed-bitmap set inside an arena.
///
/// Bit `x` of the payload is set iff `x ∈ S`; the payload is padded to
/// whole 64-bit words so the popcount-AND sweep has no tail path.
#[derive(Debug, Clone, Copy)]
pub struct BitmapRef<'a> {
    pub(crate) params: &'a ParamsHandle,
    pub(crate) bytes: &'a [u8],
    pub(crate) len: usize,
}

impl<'a> BitmapRef<'a> {
    /// The universe parameters this view's corpus shares.
    pub fn params(&self) -> &'a ParamsHandle {
        self.params
    }

    /// Number of elements stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Width of the representation in bytes (`⌈m/64⌉·8`).
    pub fn width_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The raw bitmap bytes.
    pub fn as_bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Exact membership test: one bit probe.
    pub fn contains(&self, x: u32) -> bool {
        debug_assert!((x as u64) < self.params.m());
        self.bytes[x as usize / 8] & (1 << (x % 8)) != 0
    }

    /// Visit every stored element in ascending order.
    pub fn for_each(&self, mut f: impl FnMut(u32)) {
        for (w, chunk) in self.bytes.chunks_exact(8).enumerate() {
            let mut word = u64::from_le_bytes(chunk.try_into().unwrap());
            while word != 0 {
                let bit = word.trailing_zeros();
                f((w as u32) * 64 + bit);
                word &= word - 1;
            }
        }
    }

    /// Enumerate the stored elements, ascending.
    pub fn elements(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|x| out.push(x));
        out
    }
}

/// Zero-copy view of one sorted-tidlist set inside an arena
/// (little-endian `u32`s, ascending, duplicate-free).
#[derive(Debug, Clone, Copy)]
pub struct TidlistRef<'a> {
    pub(crate) params: &'a ParamsHandle,
    pub(crate) bytes: &'a [u8],
}

impl<'a> TidlistRef<'a> {
    /// Borrow a tidlist view over caller-owned bytes: little-endian
    /// `u32`s, ascending, duplicate-free (as produced by
    /// [`encode_tidlist_into`]). This is how ad-hoc probe sets — e.g. a
    /// query server's client-supplied element lists — enter the
    /// mixed-representation count kernels without being inserted into
    /// an arena first.
    ///
    /// # Panics
    /// Panics if `bytes` is not a whole number of `u32`s.
    pub fn from_bytes(params: &'a ParamsHandle, bytes: &'a [u8]) -> Self {
        assert_eq!(bytes.len() % 4, 0, "tidlist bytes must be 4-byte words");
        TidlistRef { params, bytes }
    }

    /// The universe parameters this view's corpus shares.
    pub fn params(&self) -> &'a ParamsHandle {
        self.params
    }

    /// Number of elements stored.
    pub fn len(&self) -> usize {
        self.bytes.len() / 4
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Width of the representation in bytes (`4·len`).
    pub fn width_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The raw tidlist bytes.
    pub fn as_bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Element at sorted position `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> u32 {
        u32::from_le_bytes(self.bytes[4 * i..4 * i + 4].try_into().unwrap())
    }

    /// Exact membership test: binary search.
    pub fn contains(&self, x: u32) -> bool {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.get(mid).cmp(&x) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Enumerate the stored elements, ascending.
    pub fn elements(&self) -> Vec<u32> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

/// A borrowed, typed view of one set inside an arena: the seam the
/// mixed-representation count kernels ([`crate::intersect::count_mixed`]
/// and friends) and the hybrid tile executors consume. `Copy`, at most
/// four words on the stack.
#[derive(Debug, Clone, Copy)]
pub enum SetView<'a> {
    /// The positional 2-of-3 layout.
    Batmap(BatmapRef<'a>),
    /// Uncompressed bitmap over the universe.
    Bitmap(BitmapRef<'a>),
    /// Sorted tidlist.
    Tidlist(TidlistRef<'a>),
}

impl<'a> SetView<'a> {
    /// The universe parameters this view's corpus shares.
    pub fn params(&self) -> &'a ParamsHandle {
        match self {
            SetView::Batmap(b) => b.params(),
            SetView::Bitmap(b) => b.params(),
            SetView::Tidlist(t) => t.params(),
        }
    }

    /// Which representation this set is stored in.
    pub fn repr(&self) -> SetRepr {
        match self {
            SetView::Batmap(_) => SetRepr::Batmap,
            SetView::Bitmap(_) => SetRepr::Bitmap,
            SetView::Tidlist(_) => SetRepr::Tidlist,
        }
    }

    /// Number of elements stored.
    pub fn len(&self) -> usize {
        match self {
            SetView::Batmap(b) => b.len(),
            SetView::Bitmap(b) => b.len(),
            SetView::Tidlist(t) => t.len(),
        }
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Width of the stored payload in bytes.
    pub fn width_bytes(&self) -> usize {
        match self {
            SetView::Batmap(b) => b.width_bytes(),
            SetView::Bitmap(b) => b.width_bytes(),
            SetView::Tidlist(t) => t.width_bytes(),
        }
    }

    /// Exact membership test, whatever the representation.
    pub fn contains(&self, x: u32) -> bool {
        match self {
            SetView::Batmap(b) => b.contains(x),
            SetView::Bitmap(b) => b.contains(x),
            SetView::Tidlist(t) => t.contains(x),
        }
    }

    /// Enumerate the stored elements, in unspecified order.
    pub fn elements(&self) -> Vec<u32> {
        match self {
            SetView::Batmap(b) => b.elements(),
            SetView::Bitmap(b) => b.elements(),
            SetView::Tidlist(t) => t.elements(),
        }
    }
}

/// Encode `elements` (sorted, duplicate-free) as an uncompressed bitmap
/// into `out`, which must be exactly [`bitmap_width_bytes`] long. The
/// whole window is overwritten.
pub fn encode_bitmap_into(elements: &[u32], out: &mut [u8]) {
    out.fill(0);
    for &x in elements {
        out[x as usize / 8] |= 1 << (x % 8);
    }
}

/// Encode `elements` (sorted, duplicate-free) as a little-endian
/// tidlist into `out`, which must be exactly [`tidlist_width_bytes`]
/// long. The whole window is overwritten.
pub fn encode_tidlist_into(elements: &[u32], out: &mut [u8]) {
    assert_eq!(out.len(), 4 * elements.len(), "tidlist window width");
    for (chunk, &x) in out.chunks_exact_mut(4).zip(elements) {
        chunk.copy_from_slice(&x.to_le_bytes());
    }
}

/// Walk a batmap's elements without allocating: visit each stored
/// element exactly once via the indicator-bit scan (the sparser-probes-
/// denser cross-representation kernels use this to stream one operand
/// against the other's membership test).
pub(crate) fn for_each_batmap_element(b: &BatmapRef<'_>, mut f: impl FnMut(u32)) {
    let params = b.params();
    let r = b.range();
    for (idx, &byte) in b.slot_bytes().iter().enumerate() {
        if !crate::slot::indicator(byte) {
            continue;
        }
        let t = params.table_of_slot(idx);
        let pi = params
            .decode_slot(idx, crate::slot::key(byte), r)
            .expect("live slot must decode");
        f(params.perms().invert(t, pi) as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BatmapParams;

    #[test]
    fn tags_and_names_roundtrip() {
        for repr in [SetRepr::Batmap, SetRepr::Bitmap, SetRepr::Tidlist] {
            assert_eq!(SetRepr::from_tag(repr.tag()), Some(repr));
            assert!((repr.tag() as usize) < REPR_COUNT);
        }
        assert_eq!(SetRepr::from_tag(3), None);
        assert_eq!(SetRepr::from_tag(u64::MAX), None);
        for policy in ALL_REPR_POLICIES {
            assert_eq!(ReprPolicy::from_name(policy.name()), Some(policy));
            assert_ne!(policy, ReprPolicy::Auto);
        }
        assert_eq!(ReprPolicy::from_name("AUTO"), Some(ReprPolicy::Auto));
        assert_eq!(ReprPolicy::from_name("nope"), None);
    }

    #[test]
    fn override_resolution_policy() {
        // No override / explicit auto → the legacy pure-batmap corpus.
        assert_eq!(ReprPolicy::resolve_override(None), ReprPolicy::Batmap);
        assert_eq!(
            ReprPolicy::resolve_override(Some("auto")),
            ReprPolicy::Batmap
        );
        // Typos degrade to batmap, never panic.
        assert_eq!(
            ReprPolicy::resolve_override(Some("bogus")),
            ReprPolicy::Batmap
        );
        // Every concrete policy resolves to itself.
        for policy in ALL_REPR_POLICIES {
            assert_eq!(ReprPolicy::resolve_override(Some(policy.name())), policy);
            assert_eq!(policy.resolve(), policy);
        }
        let resolved = ReprPolicy::Auto.resolve();
        assert_ne!(resolved, ReprPolicy::Auto);
    }

    #[test]
    fn hybrid_thresholds() {
        // A GPU-shift universe: r₀ = 64, m = 2000.
        let p = BatmapParams::with_options(2000, 7, 128, 6);
        assert_eq!(p.r0(), 64);
        let choose = |len: usize| ReprPolicy::Hybrid.choose(len, p.m(), p.range_for(len));
        // Dense head: density ≥ 1/32 → bitmap.
        assert_eq!(choose(2000), SetRepr::Bitmap);
        assert_eq!(choose(63), SetRepr::Bitmap); // 63·32 = 2016 ≥ 2000

        // Sparse tail at the r₀ floor: 16·len ≤ 3·64 = 192 → len ≤ 12.
        assert_eq!(choose(0), SetRepr::Tidlist);
        assert_eq!(choose(12), SetRepr::Tidlist);
        // The middle band stays batmap.
        assert_eq!(choose(13), SetRepr::Batmap);
        assert_eq!(choose(62), SetRepr::Batmap);
        // Above the floor the tidlist rule can never fire: 3·r < 16·len.
        for len in [40usize, 100, 500] {
            let r = p.range_for(len);
            if r > p.r0() {
                assert!(3 * r < 16 * len as u64);
            }
        }
        // Forced policies ignore density.
        assert_eq!(
            ReprPolicy::Batmap.choose(2000, p.m(), p.range_for(2000)),
            SetRepr::Batmap
        );
        assert_eq!(ReprPolicy::Bitmap.choose(0, p.m(), p.r0()), SetRepr::Bitmap);
        assert_eq!(
            ReprPolicy::Tidlist.choose(2000, p.m(), p.range_for(2000)),
            SetRepr::Tidlist
        );
    }

    #[test]
    fn widths_are_word_friendly() {
        assert_eq!(bitmap_width_bytes(1), 8);
        assert_eq!(bitmap_width_bytes(64), 8);
        assert_eq!(bitmap_width_bytes(65), 16);
        assert_eq!(bitmap_width_bytes(2000), 256);
        assert_eq!(tidlist_width_bytes(0), 0);
        assert_eq!(tidlist_width_bytes(12), 48);
    }

    #[test]
    fn encoders_roundtrip_through_views() {
        use std::sync::Arc;
        let params: ParamsHandle = Arc::new(BatmapParams::new(500, 3));
        let elements: Vec<u32> = vec![0, 1, 17, 63, 64, 65, 200, 499];

        let mut bits = vec![0xFFu8; bitmap_width_bytes(500)];
        encode_bitmap_into(&elements, &mut bits);
        let bv = BitmapRef {
            params: &params,
            bytes: &bits,
            len: elements.len(),
        };
        assert_eq!(bv.elements(), elements);
        assert!(bv.contains(63) && bv.contains(64) && !bv.contains(62));

        let mut tids = vec![0u8; tidlist_width_bytes(elements.len())];
        encode_tidlist_into(&elements, &mut tids);
        let tv = TidlistRef {
            params: &params,
            bytes: &tids,
        };
        assert_eq!(tv.elements(), elements);
        for x in 0..500u32 {
            assert_eq!(tv.contains(x), elements.contains(&x), "x={x}");
        }
        assert_eq!(tv.len(), elements.len());
    }
}
