//! True SIMD match-count backends: SSE2 (16 lanes), AVX2 (32 lanes) and
//! AVX-512 (64 lanes) via `std::arch`, with runtime CPU-feature
//! detection.
//!
//! The §III-A predicate — count the byte lanes whose 7 key bits agree
//! *and* whose indicator bits OR to 1 — maps directly onto packed byte
//! compares:
//!
//! ```text
//! keys  = (x ⊕ y) ∧ 0x7F..7F          per-lane key difference
//! eq    = cmpeq_epi8(keys, 0)          0xFF where keys agree
//! hit   = eq ∧ (x ∨ y)                 MSB set iff counted match
//! count += popcount(movemask_epi8(hit))
//! ```
//!
//! `movemask_epi8` extracts exactly the per-lane MSB — which is the
//! indicator bit of `x ∨ y` masked by the key-equality verdict — so one
//! `popcount` per register finishes the horizontal add that costs the
//! SWAR formulations four shifts (u32) or a scalar `popcnt` per eight
//! lanes (u64). The AVX-512 backend expresses the same predicate in
//! mask registers: `_mm512_cmpeq_epi8_mask` yields the key-equality
//! verdict directly as a `__mmask64`, `_mm512_movepi8_mask` extracts
//! the indicator MSBs, and one `count_ones` of their AND finishes 64
//! lanes — no byte-wide `hit` vector is ever materialized.
//!
//! Three design rules shared by both backends (and mirrored by the SWAR
//! slice kernels in [`crate::swar`]):
//!
//! * **bulk loops, one dispatch** — the slice entry points
//!   ([`MatchKernel::count_equal_width`], `count_wrapped`, and the
//!   batched `count_equal_width_many`) each run the whole input inside
//!   a single monomorphized `#[target_feature]` function, so selecting
//!   a backend costs one virtual call per *intersection*, never one per
//!   word;
//! * **shared tail handling** — widths are rarely register multiples
//!   (`3·r` bytes); every backend finishes the ragged tail through
//!   [`swar::match_count_slices`] (u64 body + scalar edge), so a width
//!   shorter than one register degrades gracefully instead of reading
//!   out of bounds;
//! * **wrapped chunk layout** — the §II different-width comparison
//!   walks the large batmap in `|small|`-byte chunks; each chunk reuses
//!   the equal-width loop, tails included, inside the same
//!   `#[target_feature]` region.
//!
//! Safety: the public kernel types are safe. The AVX2 and AVX-512
//! entry points assert feature support before entering
//! `#[target_feature]` code (the check is one cached atomic load);
//! SSE2 is part of the `x86_64` baseline, so its intrinsics need no
//! detection. The whole module is compiled only on `x86_64` —
//! [`crate::kernel::KernelBackend`] reports these backends unavailable
//! elsewhere and `resolve()` falls back to the portable SWAR kernels
//! (or, on `aarch64`, the NEON backend in `crate::neon`).

use crate::kernel::MatchKernel;
use crate::swar;
use std::arch::x86_64::*;

/// Candidates processed per accumulator block of the batched
/// one-vs-many loops: enough to amortize each probe-register load
/// across several comparisons, few enough that the per-candidate
/// accumulators stay in registers.
pub const MANY_BLOCK: usize = 4;

/// Abort if `candidates`/`out` disagree or a candidate's width differs
/// from the probe's (the batched loops index all arrays in lockstep).
fn check_many(probe: &[u8], candidates: &[&[u8]], out: &[u64]) {
    assert_eq!(candidates.len(), out.len(), "one output slot per candidate");
    for c in candidates {
        assert_eq!(
            c.len(),
            probe.len(),
            "batched candidates must match the probe width"
        );
    }
}

// ---------------------------------------------------------------------
// SSE2 — 16 lanes per 128-bit register (baseline on x86_64).
// ---------------------------------------------------------------------

/// Matching lanes of two 128-bit registers of 16 slots each, as a
/// popcounted movemask.
#[inline]
fn hit_count_128(x: __m128i, y: __m128i) -> u32 {
    // SAFETY: SSE2 is a baseline target feature of every x86_64 target.
    unsafe {
        let keys = _mm_and_si128(_mm_xor_si128(x, y), _mm_set1_epi8(0x7F));
        let eq = _mm_cmpeq_epi8(keys, _mm_setzero_si128());
        let hit = _mm_and_si128(eq, _mm_or_si128(x, y));
        (_mm_movemask_epi8(hit) as u32).count_ones()
    }
}

/// Equal-width count over the 16-byte body, tail through the shared
/// SWAR path. Asserts its own length precondition — the vector loads
/// below read both slices up to the body bound, so equal length is a
/// safety requirement, not just a correctness one.
fn sse2_count_equal_width(xs: &[u8], ys: &[u8]) -> u64 {
    assert_eq!(xs.len(), ys.len(), "batmap slices must have equal width");
    let body = xs.len() & !15;
    let mut count = 0u64;
    let mut base = 0;
    while base < body {
        // SAFETY: `base + 16 <= body <= len` on both slices; unaligned
        // loads are explicitly permitted by `_mm_loadu_si128`.
        let (x, y) = unsafe {
            (
                _mm_loadu_si128(xs.as_ptr().add(base) as *const __m128i),
                _mm_loadu_si128(ys.as_ptr().add(base) as *const __m128i),
            )
        };
        count += hit_count_128(x, y) as u64;
        base += 16;
    }
    count + swar::match_count_slices(&xs[body..], &ys[body..])
}

/// One probe against a block of equal-width candidates, chunk-major:
/// each 16-byte probe register is loaded once and compared against the
/// same offset of every candidate in the block. Asserts the width
/// precondition itself (the loads index every candidate up to the
/// probe's body bound), so the function is safe without relying on the
/// caller's [`check_many`].
fn sse2_count_many(probe: &[u8], candidates: &[&[u8]], out: &mut [u64]) {
    for c in candidates {
        assert_eq!(
            c.len(),
            probe.len(),
            "batched candidates must match the probe width"
        );
    }
    for (block, out_block) in candidates
        .chunks(MANY_BLOCK)
        .zip(out.chunks_mut(MANY_BLOCK))
    {
        let mut acc = [0u64; MANY_BLOCK];
        let body = probe.len() & !15;
        let mut base = 0;
        while base < body {
            // SAFETY: every candidate has the probe's length (asserted
            // above) and `base + 16 <= body`.
            unsafe {
                let p = _mm_loadu_si128(probe.as_ptr().add(base) as *const __m128i);
                for (j, c) in block.iter().enumerate() {
                    let q = _mm_loadu_si128(c.as_ptr().add(base) as *const __m128i);
                    acc[j] += hit_count_128(p, q) as u64;
                }
            }
            base += 16;
        }
        for (j, c) in block.iter().enumerate() {
            out_block[j] = acc[j] + swar::match_count_slices(&probe[body..], &c[body..]);
        }
    }
}

/// 16 lanes per step through 128-bit SSE2 registers.
///
/// Part of the `x86_64` baseline instruction set, so this backend is
/// always available on that architecture (no runtime check on the hot
/// path).
#[derive(Debug, Clone, Copy, Default)]
pub struct Sse2Kernel;

impl MatchKernel for Sse2Kernel {
    fn name(&self) -> &'static str {
        "sse2"
    }
    fn lanes(&self) -> usize {
        16
    }
    fn count_word_u32(&self, x: u32, y: u32) -> u32 {
        // A single staged word cannot fill a register; use the paper's
        // u32 formulation (the simulator cost below models the staged
        // loop, where four words share one 128-bit comparison).
        swar::match_count_u32(x, y)
    }
    fn ops_per_staged_word(&self) -> u64 {
        // Four staged 32-bit words per 128-bit comparison sequence
        // (~8 ops): the paper's per-u32 charge of 8 amortizes to 2.
        2
    }
    fn count_equal_width(&self, xs: &[u8], ys: &[u8]) -> u64 {
        assert_eq!(xs.len(), ys.len(), "batmap slices must have equal width");
        sse2_count_equal_width(xs, ys)
    }
    // `count_wrapped` keeps the trait default: on this concrete type
    // the default's per-chunk `self.count_equal_width` call inlines to
    // `sse2_count_equal_width` (SSE2 needs no feature gate, so there is
    // no `#[target_feature]` region to keep the loop inside — unlike
    // the AVX2 impl, which overrides for exactly that reason).
    fn count_equal_width_many(&self, probe: &[u8], candidates: &[&[u8]], out: &mut [u64]) {
        check_many(probe, candidates, out);
        sse2_count_many(probe, candidates, out);
    }
    fn value_eq(&self, x: u64, y: u64) -> bool {
        crate::kernel::branchless_eq(x, y)
    }
}

// ---------------------------------------------------------------------
// AVX2 — 32 lanes per 256-bit register (runtime-detected).
// ---------------------------------------------------------------------

/// True iff this CPU supports the AVX2 backend.
#[inline]
pub fn avx2_available() -> bool {
    // `is_x86_feature_detected!` caches its CPUID probe in an atomic,
    // so this is one relaxed load after the first call.
    is_x86_feature_detected!("avx2")
}

/// Abort rather than execute AVX2 code on a CPU without it. Guards the
/// safe entry points of [`Avx2Kernel`]; dispatch normally prevents this
/// (``resolve()`` never selects an unavailable backend), but the kernel
/// type itself is public.
#[inline]
fn assert_avx2() {
    assert!(
        avx2_available(),
        "AVX2 match kernel selected on a CPU without AVX2 \
         (use KernelBackend::Auto or resolve() to pick an available backend)"
    );
}

/// Matching lanes of two 256-bit registers of 32 slots each.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hit_count_256(x: __m256i, y: __m256i) -> u32 {
    let keys = _mm256_and_si256(_mm256_xor_si256(x, y), _mm256_set1_epi8(0x7F));
    let eq = _mm256_cmpeq_epi8(keys, _mm256_setzero_si256());
    let hit = _mm256_and_si256(eq, _mm256_or_si256(x, y));
    (_mm256_movemask_epi8(hit) as u32).count_ones()
}

/// Equal-width count over the 32-byte body, tail through the shared
/// SWAR path.
///
/// # Safety
/// The CPU must support AVX2.
#[target_feature(enable = "avx2")]
unsafe fn avx2_count_equal_width(xs: &[u8], ys: &[u8]) -> u64 {
    debug_assert_eq!(xs.len(), ys.len());
    let body = xs.len() & !31;
    let mut count = 0u64;
    let mut base = 0;
    while base < body {
        let x = _mm256_loadu_si256(xs.as_ptr().add(base) as *const __m256i);
        let y = _mm256_loadu_si256(ys.as_ptr().add(base) as *const __m256i);
        count += hit_count_256(x, y) as u64;
        base += 32;
    }
    count + swar::match_count_slices(&xs[body..], &ys[body..])
}

/// The wrapped (§II folded) comparison, entirely inside one AVX2
/// region: each `|small|`-byte chunk of `large` reuses the equal-width
/// loop, ragged tails included.
///
/// # Safety
/// The CPU must support AVX2.
#[target_feature(enable = "avx2")]
unsafe fn avx2_count_wrapped(large: &[u8], small: &[u8]) -> u64 {
    let mut count = 0u64;
    for chunk in large.chunks_exact(small.len()) {
        count += avx2_count_equal_width(chunk, small);
    }
    count
}

/// One probe against a block of equal-width candidates, chunk-major
/// (see [`sse2_count_many`]).
///
/// # Safety
/// The CPU must support AVX2; every candidate must have the probe's
/// length.
#[target_feature(enable = "avx2")]
unsafe fn avx2_count_many(probe: &[u8], candidates: &[&[u8]], out: &mut [u64]) {
    for (block, out_block) in candidates
        .chunks(MANY_BLOCK)
        .zip(out.chunks_mut(MANY_BLOCK))
    {
        let mut acc = [0u64; MANY_BLOCK];
        let body = probe.len() & !31;
        let mut base = 0;
        while base < body {
            let p = _mm256_loadu_si256(probe.as_ptr().add(base) as *const __m256i);
            for (j, c) in block.iter().enumerate() {
                let q = _mm256_loadu_si256(c.as_ptr().add(base) as *const __m256i);
                acc[j] += hit_count_256(p, q) as u64;
            }
            base += 32;
        }
        for (j, c) in block.iter().enumerate() {
            out_block[j] = acc[j] + swar::match_count_slices(&probe[body..], &c[body..]);
        }
    }
}

/// 32 lanes per step through 256-bit AVX2 registers — the widest CPU
/// backend. Requires runtime detection ([`avx2_available`]); the safe
/// entry points assert support before entering vector code.
#[derive(Debug, Clone, Copy, Default)]
pub struct Avx2Kernel;

impl MatchKernel for Avx2Kernel {
    fn name(&self) -> &'static str {
        "avx2"
    }
    fn lanes(&self) -> usize {
        32
    }
    fn count_word_u32(&self, x: u32, y: u32) -> u32 {
        // Single staged word: the vector width buys nothing here (see
        // `Sse2Kernel::count_word_u32`); cost is modelled by
        // `ops_per_staged_word` for the staged loop instead.
        swar::match_count_u32(x, y)
    }
    fn ops_per_staged_word(&self) -> u64 {
        // Eight staged 32-bit words per 256-bit comparison sequence:
        // the paper's per-u32 charge of 8 amortizes to 1.
        1
    }
    fn count_equal_width(&self, xs: &[u8], ys: &[u8]) -> u64 {
        assert_eq!(xs.len(), ys.len(), "batmap slices must have equal width");
        assert_avx2();
        // SAFETY: AVX2 support just asserted.
        unsafe { avx2_count_equal_width(xs, ys) }
    }
    fn count_wrapped(&self, large: &[u8], small: &[u8]) -> u64 {
        assert!(!small.is_empty());
        assert_eq!(
            large.len() % small.len(),
            0,
            "large width {} must be a multiple of small width {}",
            large.len(),
            small.len()
        );
        assert_avx2();
        // SAFETY: AVX2 support just asserted.
        unsafe { avx2_count_wrapped(large, small) }
    }
    fn count_equal_width_many(&self, probe: &[u8], candidates: &[&[u8]], out: &mut [u64]) {
        check_many(probe, candidates, out);
        assert_avx2();
        // SAFETY: AVX2 support asserted; widths checked by check_many.
        unsafe { avx2_count_many(probe, candidates, out) }
    }
    fn value_eq(&self, x: u64, y: u64) -> bool {
        crate::kernel::branchless_eq(x, y)
    }
}

// ---------------------------------------------------------------------
// AVX-512 — 64 lanes per 512-bit register (runtime-detected).
// ---------------------------------------------------------------------

/// True iff this CPU supports the AVX-512 backend. The byte compares
/// need AVX-512BW on top of the AVX-512F foundation (both are present
/// on every shipping AVX-512 server part, but they are distinct CPUID
/// bits, so both are probed).
#[inline]
pub fn avx512_available() -> bool {
    // `is_x86_feature_detected!` caches its CPUID probe in an atomic,
    // so this is two relaxed loads after the first call.
    is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw")
}

/// Abort rather than execute AVX-512 code on a CPU without it (see
/// [`assert_avx2`] — same rationale, the kernel type is public).
#[inline]
fn assert_avx512() {
    assert!(
        avx512_available(),
        "AVX-512 match kernel selected on a CPU without AVX-512BW \
         (use KernelBackend::Auto or resolve() to pick an available backend)"
    );
}

/// Matching lanes of two 512-bit registers of 64 slots each. The
/// predicate runs in mask registers: key equality arrives as a
/// `__mmask64` straight from the compare, the indicator bits via
/// `movepi8_mask`, and their AND popcounts in one scalar op.
#[inline]
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn hit_count_512(x: __m512i, y: __m512i) -> u32 {
    let keys = _mm512_and_si512(_mm512_xor_si512(x, y), _mm512_set1_epi8(0x7F));
    let eq: __mmask64 = _mm512_cmpeq_epi8_mask(keys, _mm512_setzero_si512());
    let ind: __mmask64 = _mm512_movepi8_mask(_mm512_or_si512(x, y));
    (eq & ind).count_ones()
}

/// Equal-width count over the 64-byte body, tail through the shared
/// SWAR path.
///
/// # Safety
/// The CPU must support AVX-512F and AVX-512BW.
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn avx512_count_equal_width(xs: &[u8], ys: &[u8]) -> u64 {
    debug_assert_eq!(xs.len(), ys.len());
    let body = xs.len() & !63;
    let mut count = 0u64;
    let mut base = 0;
    while base < body {
        let x = _mm512_loadu_si512(xs.as_ptr().add(base) as *const __m512i);
        let y = _mm512_loadu_si512(ys.as_ptr().add(base) as *const __m512i);
        count += hit_count_512(x, y) as u64;
        base += 64;
    }
    count + swar::match_count_slices(&xs[body..], &ys[body..])
}

/// The wrapped (§II folded) comparison, entirely inside one AVX-512
/// region (see [`avx2_count_wrapped`]).
///
/// # Safety
/// The CPU must support AVX-512F and AVX-512BW.
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn avx512_count_wrapped(large: &[u8], small: &[u8]) -> u64 {
    let mut count = 0u64;
    for chunk in large.chunks_exact(small.len()) {
        count += avx512_count_equal_width(chunk, small);
    }
    count
}

/// One probe against a block of equal-width candidates, chunk-major
/// (see [`sse2_count_many`]).
///
/// # Safety
/// The CPU must support AVX-512F and AVX-512BW; every candidate must
/// have the probe's length.
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn avx512_count_many(probe: &[u8], candidates: &[&[u8]], out: &mut [u64]) {
    for (block, out_block) in candidates
        .chunks(MANY_BLOCK)
        .zip(out.chunks_mut(MANY_BLOCK))
    {
        let mut acc = [0u64; MANY_BLOCK];
        let body = probe.len() & !63;
        let mut base = 0;
        while base < body {
            let p = _mm512_loadu_si512(probe.as_ptr().add(base) as *const __m512i);
            for (j, c) in block.iter().enumerate() {
                let q = _mm512_loadu_si512(c.as_ptr().add(base) as *const __m512i);
                acc[j] += hit_count_512(p, q) as u64;
            }
            base += 64;
        }
        for (j, c) in block.iter().enumerate() {
            out_block[j] = acc[j] + swar::match_count_slices(&probe[body..], &c[body..]);
        }
    }
}

/// 64 lanes per step through 512-bit ZMM registers — the widest CPU
/// backend. Requires runtime detection ([`avx512_available`]); the safe
/// entry points assert support before entering vector code.
#[derive(Debug, Clone, Copy, Default)]
pub struct Avx512Kernel;

impl MatchKernel for Avx512Kernel {
    fn name(&self) -> &'static str {
        "avx512"
    }
    fn lanes(&self) -> usize {
        64
    }
    fn count_word_u32(&self, x: u32, y: u32) -> u32 {
        // Single staged word: the vector width buys nothing here (see
        // `Sse2Kernel::count_word_u32`).
        swar::match_count_u32(x, y)
    }
    fn ops_per_staged_word(&self) -> u64 {
        // Sixteen staged 32-bit words per 512-bit comparison sequence
        // would amortize the paper's per-u32 charge of 8 to 0.5, but
        // the simulator's unit of account is one scalar op — the charge
        // floors at 1 (matching AVX2; the win over AVX2 shows up in the
        // measured CPU scenarios, not the simulated cost model).
        1
    }
    fn count_equal_width(&self, xs: &[u8], ys: &[u8]) -> u64 {
        assert_eq!(xs.len(), ys.len(), "batmap slices must have equal width");
        assert_avx512();
        // SAFETY: AVX-512 support just asserted.
        unsafe { avx512_count_equal_width(xs, ys) }
    }
    fn count_wrapped(&self, large: &[u8], small: &[u8]) -> u64 {
        assert!(!small.is_empty());
        assert_eq!(
            large.len() % small.len(),
            0,
            "large width {} must be a multiple of small width {}",
            large.len(),
            small.len()
        );
        assert_avx512();
        // SAFETY: AVX-512 support just asserted.
        unsafe { avx512_count_wrapped(large, small) }
    }
    fn count_equal_width_many(&self, probe: &[u8], candidates: &[&[u8]], out: &mut [u64]) {
        check_many(probe, candidates, out);
        assert_avx512();
        // SAFETY: AVX-512 support asserted; widths checked by check_many.
        unsafe { avx512_count_many(probe, candidates, out) }
    }
    fn value_eq(&self, x: u64, y: u64) -> bool {
        crate::kernel::branchless_eq(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ScalarKernel;

    fn sample(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let gen = |next: &mut dyn FnMut() -> u64| -> Vec<u8> {
            (0..len)
                .map(|_| {
                    let r = next();
                    if r.is_multiple_of(4) {
                        0x7F
                    } else {
                        ((r >> 8) as u8 % 0x7F) | if r & 1 == 1 { 0x80 } else { 0 }
                    }
                })
                .collect()
        };
        (gen(&mut next), gen(&mut next))
    }

    #[test]
    fn sse2_matches_scalar_on_ragged_widths() {
        for len in [0usize, 1, 7, 15, 16, 17, 31, 32, 33, 63, 64, 100, 255, 1024] {
            let (xs, ys) = sample(len, 0xACE + len as u64);
            assert_eq!(
                Sse2Kernel.count_equal_width(&xs, &ys),
                ScalarKernel.count_equal_width(&xs, &ys),
                "len {len}"
            );
        }
    }

    #[test]
    fn avx2_matches_scalar_on_ragged_widths() {
        if !avx2_available() {
            eprintln!("skipping: no AVX2 on this CPU");
            return;
        }
        for len in [0usize, 1, 15, 16, 31, 32, 33, 63, 64, 65, 96, 255, 1024] {
            let (xs, ys) = sample(len, 0xBEE + len as u64);
            assert_eq!(
                Avx2Kernel.count_equal_width(&xs, &ys),
                ScalarKernel.count_equal_width(&xs, &ys),
                "len {len}"
            );
        }
    }

    #[test]
    fn avx512_matches_scalar_on_ragged_widths() {
        if !avx512_available() {
            eprintln!("skipping: no AVX-512BW on this CPU");
            return;
        }
        for len in [0usize, 1, 31, 32, 63, 64, 65, 96, 127, 128, 129, 255, 1024] {
            let (xs, ys) = sample(len, 0xFAB + len as u64);
            assert_eq!(
                Avx512Kernel.count_equal_width(&xs, &ys),
                ScalarKernel.count_equal_width(&xs, &ys),
                "len {len}"
            );
        }
    }

    #[test]
    fn wrapped_matches_scalar() {
        for small_len in [4usize, 12, 20, 48, 100] {
            let (small, _) = sample(small_len, 3);
            let (large, _) = sample(small_len * 5, 4);
            let expect = ScalarKernel.count_wrapped(&large, &small);
            assert_eq!(Sse2Kernel.count_wrapped(&large, &small), expect);
            if avx2_available() {
                assert_eq!(Avx2Kernel.count_wrapped(&large, &small), expect);
            }
            if avx512_available() {
                assert_eq!(Avx512Kernel.count_wrapped(&large, &small), expect);
            }
        }
    }

    #[test]
    fn batched_many_matches_pointwise() {
        let (probe, _) = sample(200, 7);
        let stores: Vec<Vec<u8>> = (0..11).map(|i| sample(200, 100 + i).0).collect();
        let cands: Vec<&[u8]> = stores.iter().map(Vec::as_slice).collect();
        let expect: Vec<u64> = cands
            .iter()
            .map(|c| ScalarKernel.count_equal_width(&probe, c))
            .collect();
        let mut out = vec![0u64; cands.len()];
        Sse2Kernel.count_equal_width_many(&probe, &cands, &mut out);
        assert_eq!(out, expect, "sse2 batched");
        if avx2_available() {
            out.fill(0);
            Avx2Kernel.count_equal_width_many(&probe, &cands, &mut out);
            assert_eq!(out, expect, "avx2 batched");
        }
        if avx512_available() {
            out.fill(0);
            Avx512Kernel.count_equal_width_many(&probe, &cands, &mut out);
            assert_eq!(out, expect, "avx512 batched");
        }
    }

    #[test]
    #[should_panic]
    fn batched_rejects_width_mismatch() {
        let probe = vec![0x7Fu8; 32];
        let narrow = vec![0x7Fu8; 16];
        let mut out = [0u64; 1];
        Sse2Kernel.count_equal_width_many(&probe, &[&narrow], &mut out);
    }
}
