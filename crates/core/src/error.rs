//! Error types for batmap operations.

use std::fmt;

/// Errors surfaced by fallible batmap operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatmapError {
    /// The two batmaps were built from different universe parameters
    /// (different `m`, seed, shift, or `MaxLoop`); positional comparison
    /// between them is meaningless.
    UniverseMismatch,
}

impl fmt::Display for BatmapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatmapError::UniverseMismatch => {
                write!(f, "batmaps were built from different universe parameters")
            }
        }
    }
}

impl std::error::Error for BatmapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let s = BatmapError::UniverseMismatch.to_string();
        assert!(s.contains("universe"));
    }
}
