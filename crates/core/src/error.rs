//! Error types for batmap operations.

use std::fmt;

/// Errors surfaced by fallible batmap operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatmapError {
    /// The two batmaps were built from different universe parameters
    /// (different `m`, seed, shift, or `MaxLoop`); positional comparison
    /// between them is meaningless.
    UniverseMismatch,
}

impl fmt::Display for BatmapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatmapError::UniverseMismatch => {
                write!(f, "batmaps were built from different universe parameters")
            }
        }
    }
}

impl std::error::Error for BatmapError {}

/// Errors loading a persisted [`crate::arena::BatmapArena`] snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying reader failed (including unexpected EOF — a
    /// truncated snapshot surfaces here).
    Io(std::io::Error),
    /// The bytes do not form a valid snapshot: bad magic, unsupported
    /// version, corrupted or inconsistent header, out-of-bounds
    /// directory, or checksum mismatch. The message names the first
    /// check that failed.
    Format(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Format(what) => write!(f, "invalid snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let s = BatmapError::UniverseMismatch.to_string();
        assert!(s.contains("universe"));
        let s = SnapshotError::Format("bad magic".into()).to_string();
        assert!(s.contains("bad magic"));
        let io = SnapshotError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
    }
}
