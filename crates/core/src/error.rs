//! Error types for batmap operations.

use std::fmt;

/// Errors surfaced by fallible batmap operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatmapError {
    /// The two batmaps were built from different universe parameters
    /// (different `m`, seed, shift, or `MaxLoop`); positional comparison
    /// between them is meaningless.
    UniverseMismatch,
}

impl fmt::Display for BatmapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatmapError::UniverseMismatch => {
                write!(f, "batmaps were built from different universe parameters")
            }
        }
    }
}

impl std::error::Error for BatmapError {}

/// Errors loading a persisted [`crate::arena::BatmapArena`] snapshot.
///
/// The taxonomy separates *what went wrong* so operators can pick the
/// right recovery: [`Truncated`](SnapshotError::Truncated) means the
/// file ends before a section it promised (the classic torn write from
/// a crash mid-`write` — with the atomic tmp-file + rename path this
/// can only be an interrupted copy, and the previous snapshot is still
/// good); [`Corrupted`](SnapshotError::Corrupted) means the bytes are
/// all present but a checksum disagrees (bit rot, a bad disk, or a
/// partial in-place overwrite); [`Format`](SnapshotError::Format)
/// means the structure itself is not a snapshot this build understands
/// (bad magic, unsupported version, inconsistent header).
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying reader failed (including unexpected EOF reported
    /// by the reader itself).
    Io(std::io::Error),
    /// The snapshot ends mid-section: a torn write. The message names
    /// the section (header, directory, payload, side tables) that was
    /// cut short.
    Truncated(String),
    /// All bytes are present but a checksum disagrees with the header:
    /// the snapshot was damaged after it was written (or overwritten
    /// non-atomically). The message names the failing section.
    Corrupted(String),
    /// The bytes do not form a snapshot this build understands: bad
    /// magic, unsupported version, or an internally inconsistent
    /// header/directory. The message names the first check that failed.
    Format(String),
}

impl SnapshotError {
    /// True for the torn-write class of failure
    /// ([`Truncated`](SnapshotError::Truncated)): the write was cut
    /// short, so with atomic-rename persistence the previous snapshot
    /// file is still intact and loadable.
    pub fn is_torn(&self) -> bool {
        matches!(self, SnapshotError::Truncated(_))
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Truncated(what) => {
                write!(f, "torn snapshot (truncated mid-write): {what}")
            }
            SnapshotError::Corrupted(what) => write!(f, "corrupted snapshot: {what}"),
            SnapshotError::Format(what) => write!(f, "invalid snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Truncated(_)
            | SnapshotError::Corrupted(_)
            | SnapshotError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let s = BatmapError::UniverseMismatch.to_string();
        assert!(s.contains("universe"));
        let s = SnapshotError::Format("bad magic".into()).to_string();
        assert!(s.contains("bad magic"));
        let io = SnapshotError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        let torn = SnapshotError::Truncated("payload".into());
        assert!(torn.is_torn());
        assert!(torn.to_string().contains("torn"));
        let rot = SnapshotError::Corrupted("directory checksum".into());
        assert!(!rot.is_torn());
        assert!(rot.to_string().contains("corrupted"));
        assert!(!SnapshotError::Format("x".into()).is_torn());
    }
}
