//! The uncompressed reference batmap (§II's abstract `3 × r` array).
//!
//! Slots store the full permuted value `πₜ(x)` (or a sentinel) plus the
//! indicator bit, with no 8-bit compression and no layout interleaving.
//! Two roles:
//!
//! 1. **Test oracle** — a structurally independent implementation of the
//!    2-of-3 scheme, which the property tests compare against the
//!    compressed [`crate::Batmap`].
//! 2. **Space-model reference** — §III-A compares compressed and
//!    uncompressed space (`|Sᵢ| ≥ (m+1)/256` is where compression starts
//!    to win); the Fig. 8 density discussion needs both widths.

use crate::params::{ParamsHandle, TABLES};
use crate::slot;
use hpcutil::MemoryFootprint;

/// Sentinel for an empty uncompressed slot.
const EMPTY: u64 = u64::MAX;

/// An uncompressed 2-of-3 batmap: `3·r` slots of `(π value, indicator)`.
#[derive(Debug, Clone)]
pub struct UncompressedBatmap {
    params: ParamsHandle,
    r: u64,
    /// Permuted values; `EMPTY` when vacant. Table-major: slot `t·r + p`.
    values: Box<[u64]>,
    /// Indicator bits, parallel to `values`.
    indicators: Box<[bool]>,
    len: usize,
}

impl UncompressedBatmap {
    /// Build from elements (duplicates ignored), using the *same* shared
    /// permutations and cuckoo insertion as the compressed form, but the
    /// plain table-major layout and `r = 2·2^⌈log₂ n⌉` with **no**
    /// compression floor.
    ///
    /// Returns `None` if any insertion fails (the oracle has no failure
    /// side-channel; tests simply use loads where failures don't occur).
    pub fn build(params: ParamsHandle, elements: &[u32]) -> Option<Self> {
        let mut sorted = elements.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let r = 2 * (sorted.len().max(1) as u64).next_power_of_two();
        let mut occupants = vec![u32::MAX; (TABLES as u64 * r) as usize];
        let slot_of = |t: usize, x: u32| -> usize {
            let pi = params.perms().apply(t, x as u64);
            (t as u64 * r + (pi % r)) as usize
        };
        // The same INSERT as builder.rs, against the plain layout.
        let insert_copy = |occupants: &mut Vec<u32>, mut tau: u32| -> Result<(), u32> {
            for _ in 0..params.max_loop() {
                for t in 0..TABLES {
                    let s = slot_of(t, tau);
                    std::mem::swap(&mut tau, &mut occupants[s]);
                    if tau == u32::MAX {
                        return Ok(());
                    }
                }
            }
            Err(tau)
        };
        for &x in &sorted {
            for _copy in 0..2 {
                if insert_copy(&mut occupants, x).is_err() {
                    return None;
                }
            }
        }
        let mut values = vec![EMPTY; occupants.len()].into_boxed_slice();
        let mut indicators = vec![false; occupants.len()].into_boxed_slice();
        for (idx, &occ) in occupants.iter().enumerate() {
            if occ == u32::MAX {
                continue;
            }
            let here = idx / r as usize;
            let mut other = usize::MAX;
            for t in 0..TABLES {
                if t != here && occupants[slot_of(t, occ)] == occ {
                    other = t;
                }
            }
            assert_ne!(other, usize::MAX, "element {occ} has one copy");
            values[idx] = params.perms().apply(here, occ as u64);
            indicators[idx] = slot::indicator_for(here, other);
        }
        Some(UncompressedBatmap {
            params,
            r,
            values,
            indicators,
            len: sorted.len(),
        })
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Per-table range.
    pub fn range(&self) -> u64 {
        self.r
    }

    /// Membership test.
    pub fn contains(&self, x: u32) -> bool {
        (0..TABLES).any(|t| {
            let pi = self.params.perms().apply(t, x as u64);
            self.values[(t as u64 * self.r + pi % self.r) as usize] == pi
        })
    }

    /// `|self ∩ other|` by positional comparison with modular folding —
    /// the abstract §II procedure (per-table, position-by-position).
    pub fn intersect_count(&self, other: &UncompressedBatmap) -> u64 {
        assert_eq!(
            self.params.fingerprint(),
            other.params.fingerprint(),
            "universe mismatch"
        );
        let (small, large) = if self.r <= other.r {
            (self, other)
        } else {
            (other, self)
        };
        let mut count = 0u64;
        for t in 0..TABLES {
            for p in 0..large.r {
                let il = (t as u64 * large.r + p) as usize;
                let is = (t as u64 * small.r + (p % small.r)) as usize;
                let (vl, vs) = (large.values[il], small.values[is]);
                // Match: same stored value (EMPTY≠EMPTY is prevented by
                // the indicator test: empty slots carry b=false), counted
                // once via the indicator OR.
                if vl == vs && vl != EMPTY && (large.indicators[il] || small.indicators[is]) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Width in *bytes* of the natural array encoding (one 32-bit word
    /// per slot, as the paper's uncompressed strawman stores element
    /// ids): `3·r·4`.
    pub fn width_bytes(&self) -> usize {
        self.values.len() * 4
    }
}

impl MemoryFootprint for UncompressedBatmap {
    fn heap_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<u64>()
            + self.indicators.len() * std::mem::size_of::<bool>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BatmapParams;
    use crate::Batmap;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn params(m: u64) -> ParamsHandle {
        Arc::new(BatmapParams::new(m, 0x5EED))
    }

    #[test]
    fn membership() {
        let p = params(5_000);
        let elements: Vec<u32> = (0..400).map(|i| i * 7 % 5_000).collect();
        let u = UncompressedBatmap::build(p, &elements).unwrap();
        let s: BTreeSet<u32> = elements.iter().copied().collect();
        for x in 0..5_000 {
            assert_eq!(u.contains(x), s.contains(&x), "x={x}");
        }
    }

    #[test]
    fn intersection_matches_exact() {
        let p = params(20_000);
        let a: Vec<u32> = (0..800).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..200).map(|i| i * 10).collect();
        let ua = UncompressedBatmap::build(p.clone(), &a).unwrap();
        let ub = UncompressedBatmap::build(p, &b).unwrap();
        let sa: BTreeSet<u32> = a.into_iter().collect();
        let sb: BTreeSet<u32> = b.into_iter().collect();
        let expect = sa.intersection(&sb).count() as u64;
        assert_eq!(ua.intersect_count(&ub), expect);
        assert_eq!(ub.intersect_count(&ua), expect);
    }

    #[test]
    fn agrees_with_compressed_batmap() {
        let p = params(30_000);
        for (na, nb) in [(100, 100), (50, 1000), (2000, 2000), (0, 500)] {
            let a: Vec<u32> = (0..na).map(|i| i * 11 % 30_000).collect();
            let b: Vec<u32> = (0..nb).map(|i| i * 5 % 30_000).collect();
            let ua = UncompressedBatmap::build(p.clone(), &a).unwrap();
            let ub = UncompressedBatmap::build(p.clone(), &b).unwrap();
            let ca = Batmap::build(p.clone(), &a).batmap;
            let cb = Batmap::build(p.clone(), &b).batmap;
            assert_eq!(
                ua.intersect_count(&ub),
                ca.intersect_count(&cb),
                "na={na} nb={nb}"
            );
        }
    }

    #[test]
    fn compression_break_even_density() {
        // §III-A: compression wins exactly when |S| ≥ (m+1)/256. Below
        // the break-even point the compressed form is *wider* (the r₀
        // floor), above it is narrower than the uncompressed 4-byte form.
        let m = 1 << 20;
        let p = params(m);
        let sparse: Vec<u32> = (0..(m as u32 / 1024)).collect(); // density 2^-10 << 2^-8
        let dense: Vec<u32> = (0..(m as u32 / 64)).collect(); // density 2^-6 >> 2^-8
        let cs = Batmap::build(p.clone(), &sparse).batmap;
        let us = UncompressedBatmap::build(p.clone(), &sparse).unwrap();
        let cd = Batmap::build(p.clone(), &dense).batmap;
        let ud = UncompressedBatmap::build(p, &dense).unwrap();
        assert!(
            cs.width_bytes() > us.width_bytes(),
            "sparse: compressed {} should exceed uncompressed {}",
            cs.width_bytes(),
            us.width_bytes()
        );
        assert!(
            cd.width_bytes() < ud.width_bytes(),
            "dense: compressed {} should beat uncompressed {}",
            cd.width_bytes(),
            ud.width_bytes()
        );
    }
}
