//! NEON match-count backend: 16 lanes per 128-bit register on
//! `aarch64`, where Advanced SIMD is part of the architectural
//! baseline (no runtime detection needed — the `aarch64` counterpart
//! of SSE2's role on `x86_64`).
//!
//! The §III-A predicate maps onto packed byte ops exactly as in
//! `crate::simd` (the `x86_64` module — see its docs for the predicate
//! derivation and the three design rules this module mirrors):
//!
//! ```text
//! keys  = (x ⊕ y) ∧ 0x7F..7F          per-lane key difference
//! eq    = vceqq_u8(keys, 0)            0xFF where keys agree
//! hit   = eq ∧ (x ∨ y)                 MSB set iff counted match
//! count += vaddvq_u8(hit >> 7)         horizontal add of the MSBs
//! ```
//!
//! NEON has no `movemask`; instead the per-lane MSB is shifted down to
//! bit 0 and `vaddvq_u8` adds the sixteen 0/1 lanes in one
//! instruction — the same cost class as `popcount(movemask)`.
//!
//! Bulk loops run the whole slice per call (one dispatch per
//! intersection), ragged tails finish through
//! [`swar::match_count_slices`], and the wrapped comparison reuses the
//! equal-width loop per chunk — the same structure as the `x86_64`
//! backends.

use crate::kernel::MatchKernel;
use crate::swar;
use std::arch::aarch64::*;

/// Candidates per accumulator block of the batched one-vs-many loop
/// (same register-blocking rationale as `crate::simd::MANY_BLOCK`).
pub const MANY_BLOCK: usize = 4;

/// Matching lanes of two 128-bit registers of 16 slots each.
///
/// # Safety
/// NEON (Advanced SIMD) is mandatory on `aarch64`, so the intrinsics
/// are always executable; the caller must uphold no extra invariants.
#[inline]
unsafe fn hit_count_neon(x: uint8x16_t, y: uint8x16_t) -> u32 {
    let keys = vandq_u8(veorq_u8(x, y), vdupq_n_u8(0x7F));
    let eq = vceqq_u8(keys, vdupq_n_u8(0));
    let hit = vandq_u8(eq, vorrq_u8(x, y));
    vaddvq_u8(vshrq_n_u8::<7>(hit)) as u32
}

/// Equal-width count over the 16-byte body, tail through the shared
/// SWAR path. Asserts its own length precondition — the vector loads
/// below read both slices up to the body bound.
fn neon_count_equal_width(xs: &[u8], ys: &[u8]) -> u64 {
    assert_eq!(xs.len(), ys.len(), "batmap slices must have equal width");
    let body = xs.len() & !15;
    let mut count = 0u64;
    let mut base = 0;
    while base < body {
        // SAFETY: `base + 16 <= body <= len` on both slices; `vld1q_u8`
        // permits unaligned loads, and NEON is baseline on aarch64.
        let (x, y) = unsafe {
            (
                vld1q_u8(xs.as_ptr().add(base)),
                vld1q_u8(ys.as_ptr().add(base)),
            )
        };
        // SAFETY: NEON is baseline on aarch64.
        count += unsafe { hit_count_neon(x, y) } as u64;
        base += 16;
    }
    count + swar::match_count_slices(&xs[body..], &ys[body..])
}

/// One probe against a block of equal-width candidates, chunk-major:
/// each 16-byte probe register is loaded once per block. Asserts the
/// width precondition itself (the loads index every candidate up to
/// the probe's body bound).
fn neon_count_many(probe: &[u8], candidates: &[&[u8]], out: &mut [u64]) {
    for c in candidates {
        assert_eq!(
            c.len(),
            probe.len(),
            "batched candidates must match the probe width"
        );
    }
    for (block, out_block) in candidates
        .chunks(MANY_BLOCK)
        .zip(out.chunks_mut(MANY_BLOCK))
    {
        let mut acc = [0u64; MANY_BLOCK];
        let body = probe.len() & !15;
        let mut base = 0;
        while base < body {
            // SAFETY: every candidate has the probe's length (asserted
            // above) and `base + 16 <= body`; NEON is baseline.
            unsafe {
                let p = vld1q_u8(probe.as_ptr().add(base));
                for (j, c) in block.iter().enumerate() {
                    let q = vld1q_u8(c.as_ptr().add(base));
                    acc[j] += hit_count_neon(p, q) as u64;
                }
            }
            base += 16;
        }
        for (j, c) in block.iter().enumerate() {
            out_block[j] = acc[j] + swar::match_count_slices(&probe[body..], &c[body..]);
        }
    }
}

/// 16 lanes per step through 128-bit NEON registers — the `aarch64`
/// baseline SIMD backend (always available on that architecture, no
/// runtime check on the hot path).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeonKernel;

impl MatchKernel for NeonKernel {
    fn name(&self) -> &'static str {
        "neon"
    }
    fn lanes(&self) -> usize {
        16
    }
    fn count_word_u32(&self, x: u32, y: u32) -> u32 {
        // A single staged word cannot fill a register; use the paper's
        // u32 formulation (see `Sse2Kernel::count_word_u32`).
        swar::match_count_u32(x, y)
    }
    fn ops_per_staged_word(&self) -> u64 {
        // Four staged 32-bit words per 128-bit comparison sequence:
        // the paper's per-u32 charge of 8 amortizes to 2 (same lane
        // width and cost class as SSE2).
        2
    }
    fn count_equal_width(&self, xs: &[u8], ys: &[u8]) -> u64 {
        neon_count_equal_width(xs, ys)
    }
    // `count_wrapped` keeps the trait default: NEON needs no feature
    // gate, so the default's per-chunk `count_equal_width` call inlines
    // without a `#[target_feature]` boundary (the SSE2 rationale).
    fn count_equal_width_many(&self, probe: &[u8], candidates: &[&[u8]], out: &mut [u64]) {
        assert_eq!(candidates.len(), out.len(), "one output slot per candidate");
        neon_count_many(probe, candidates, out);
    }
    fn value_eq(&self, x: u64, y: u64) -> bool {
        crate::kernel::branchless_eq(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ScalarKernel;

    fn sample(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let gen = |next: &mut dyn FnMut() -> u64| -> Vec<u8> {
            (0..len)
                .map(|_| {
                    let r = next();
                    if r.is_multiple_of(4) {
                        0x7F
                    } else {
                        ((r >> 8) as u8 % 0x7F) | if r & 1 == 1 { 0x80 } else { 0 }
                    }
                })
                .collect()
        };
        (gen(&mut next), gen(&mut next))
    }

    #[test]
    fn neon_matches_scalar_on_ragged_widths() {
        for len in [0usize, 1, 7, 15, 16, 17, 31, 32, 33, 63, 64, 100, 255, 1024] {
            let (xs, ys) = sample(len, 0xAE0 + len as u64);
            assert_eq!(
                NeonKernel.count_equal_width(&xs, &ys),
                ScalarKernel.count_equal_width(&xs, &ys),
                "len {len}"
            );
        }
    }

    #[test]
    fn neon_wrapped_matches_scalar() {
        for small_len in [4usize, 12, 20, 48, 100] {
            let (small, _) = sample(small_len, 3);
            let (large, _) = sample(small_len * 5, 4);
            assert_eq!(
                NeonKernel.count_wrapped(&large, &small),
                ScalarKernel.count_wrapped(&large, &small)
            );
        }
    }

    #[test]
    fn neon_batched_many_matches_pointwise() {
        let (probe, _) = sample(200, 7);
        let stores: Vec<Vec<u8>> = (0..11).map(|i| sample(200, 100 + i).0).collect();
        let cands: Vec<&[u8]> = stores.iter().map(Vec::as_slice).collect();
        let expect: Vec<u64> = cands
            .iter()
            .map(|c| ScalarKernel.count_equal_width(&probe, c))
            .collect();
        let mut out = vec![0u64; cands.len()];
        NeonKernel.count_equal_width_many(&probe, &cands, &mut out);
        assert_eq!(out, expect, "neon batched");
    }
}
