//! Construction of batmaps: the generalized cuckoo insertion of §II-A.
//!
//! Each element is stored in 2 of its 3 candidate slots. Insertion pushes
//! a *nestless* element through the tables in the cyclic order
//! `A₁, A₂, A₃, A₁, …`, swapping it with whatever occupies its candidate
//! slot, until a swap lands in an empty slot or `MaxLoop` cycles pass.
//!
//! During construction we keep a transient side array with the *element
//! id* occupying each slot (the compressed byte form is only materialized
//! at the end); this is what lets evicted elements be re-addressed, and
//! what the final indicator-bit pass reads.
//!
//! Failed insertions (§III-C): if either copy of `x` cannot be placed,
//! all copies of `x` are removed, the currently nestless element is
//! re-inserted, and `x` is reported in [`BuildOutcome::failed`] so the
//! mining pipeline can count it through the `F_b` / `M_{p,q}` side path.

use crate::params::{ParamsHandle, EMPTY_SLOT, TABLES};
use crate::slot;
use crate::Batmap;

/// Occupant marker for an empty slot in the transient side array.
const VACANT: u32 = u32::MAX;

/// Instrumentation counters for the §II-B analysis experiments.
/// Serializable so preprocessed-corpus snapshots can carry them.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct InsertStats {
    /// Number of `insert` calls (elements attempted).
    pub elements: u64,
    /// Total element moves across all insertions (the transcript length
    /// summed; §II-B bounds its expectation by O(1/ε) per insertion).
    pub moves: u64,
    /// Longest single-insertion transcript observed.
    pub max_transcript: u64,
    /// Number of elements whose insertion failed.
    pub failures: u64,
}

/// What happened to one `insert` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Both copies placed.
    Inserted,
    /// The element was already present; nothing changed.
    Duplicate,
    /// Placement failed; the element (and possibly collateral elements
    /// evicted during recovery) was removed and recorded as failed.
    Failed,
}

/// Result of building a batmap from a set.
#[derive(Debug, Clone)]
pub struct BuildOutcome {
    /// The finished batmap (contains every element that did not fail).
    pub batmap: Batmap,
    /// Elements that could not be placed (to be handled out-of-band,
    /// §III-C). Empty in the overwhelmingly common case.
    pub failed: Vec<u32>,
    /// Construction statistics.
    pub stats: InsertStats,
}

/// Result of materializing a set **in place** into arena-owned storage
/// ([`BatmapBuilder::finish_into`]): everything a [`BuildOutcome`]
/// carries except the batmap itself, whose slot bytes now live in the
/// caller's buffer.
#[derive(Debug, Clone)]
pub struct ArenaSetOutcome {
    /// Number of elements actually placed.
    pub len: usize,
    /// Elements that could not be placed (§III-C).
    pub failed: Vec<u32>,
    /// Construction statistics for this set.
    pub stats: InsertStats,
}

/// Incremental batmap constructor with a fixed capacity.
#[derive(Debug, Clone)]
pub struct BatmapBuilder {
    params: ParamsHandle,
    /// Per-table range; the batmap holds `3·r` slots.
    r: u64,
    /// Element id in each slot, [`VACANT`] when empty.
    occupants: Vec<u32>,
    /// Elements placed (each occupies two slots).
    len: usize,
    /// Elements whose insertion failed.
    failed: Vec<u32>,
    stats: InsertStats,
}

impl BatmapBuilder {
    /// Create a builder sized for `expected_size` elements over the given
    /// universe parameters.
    ///
    /// The range is fixed at creation (`BatmapParams::range_for`); the
    /// builder does not grow. This mirrors the paper's pipeline, where
    /// set sizes are known before construction (tidlists are materialized
    /// first).
    pub fn with_capacity(params: ParamsHandle, expected_size: usize) -> Self {
        assert!(
            params.m() <= u32::MAX as u64,
            "element ids are u32; universe of {} does not fit",
            params.m()
        );
        let r = params.range_for(expected_size);
        BatmapBuilder {
            params,
            r,
            occupants: vec![VACANT; (TABLES as u64 * r) as usize],
            len: 0,
            failed: Vec::new(),
            stats: InsertStats::default(),
        }
    }

    /// Per-table range `r` of the batmap under construction.
    pub fn range(&self) -> u64 {
        self.r
    }

    /// Number of elements currently placed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no element is placed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Candidate slot of element `x` in table `t`.
    #[inline]
    fn candidate(&self, t: usize, x: u32) -> usize {
        let pi = self.params.perms().apply(t, x as u64);
        self.params.slot_of(t, pi, self.r)
    }

    /// Whether `x` is currently placed (i.e. occupies ≥ 1 slot).
    pub fn contains(&self, x: u32) -> bool {
        (0..TABLES).any(|t| self.occupants[self.candidate(t, x)] == x)
    }

    /// The §II-A INSERT procedure: push `tau` through the tables until a
    /// vacant slot absorbs it or `MaxLoop` cycles pass; on failure the
    /// currently nestless element is returned.
    fn insert_copy(&mut self, mut tau: u32) -> Result<(), u32> {
        let mut transcript = 0u64;
        for _ in 0..self.params.max_loop() {
            for t in 0..TABLES {
                let slot = self.candidate(t, tau);
                std::mem::swap(&mut tau, &mut self.occupants[slot]);
                transcript += 1;
                if tau == VACANT {
                    self.stats.moves += transcript;
                    self.stats.max_transcript = self.stats.max_transcript.max(transcript);
                    return Ok(());
                }
            }
        }
        self.stats.moves += transcript;
        self.stats.max_transcript = self.stats.max_transcript.max(transcript);
        Err(tau)
    }

    /// Remove every placed copy of `x` (at most one per table).
    fn remove_all(&mut self, x: u32) {
        for t in 0..TABLES {
            let slot = self.candidate(t, x);
            if self.occupants[slot] == x {
                self.occupants[slot] = VACANT;
            }
        }
    }

    /// Failure recovery (§III-C): drop `x` entirely, then re-home the
    /// chain of nestless elements. Each iteration either re-places the
    /// nestless element or removes it too (and continues with the next
    /// victim), so the loop terminates.
    fn recover(&mut self, x: u32, mut nestless: u32) {
        self.remove_all(x);
        self.failed.push(x);
        self.stats.failures += 1;
        while nestless != x {
            match self.insert_copy(nestless) {
                Ok(()) => break,
                Err(next) => {
                    let victim = nestless;
                    self.remove_all(victim);
                    self.failed.push(victim);
                    self.stats.failures += 1;
                    self.len -= 1; // victim had been fully placed before
                    if next == victim {
                        break;
                    }
                    nestless = next;
                }
            }
        }
    }

    /// Insert element `x < m` (two copies).
    pub fn insert(&mut self, x: u32) -> InsertOutcome {
        assert!((x as u64) < self.params.m(), "element {x} outside universe");
        if self.contains(x) {
            return InsertOutcome::Duplicate;
        }
        self.stats.elements += 1;
        for _copy in 0..2 {
            if let Err(nestless) = self.insert_copy(x) {
                self.recover(x, nestless);
                return InsertOutcome::Failed;
            }
        }
        self.len += 1;
        InsertOutcome::Inserted
    }

    /// Re-arm this builder for a fresh set of `expected_size` elements,
    /// reusing the occupant allocation. The arena preprocessing path
    /// keeps one builder per worker and resets it per set, so the only
    /// per-set allocations left are the (usually empty) failure list.
    pub fn reset(&mut self, expected_size: usize) {
        self.r = self.params.range_for(expected_size);
        self.occupants.clear();
        self.occupants
            .resize((TABLES as u64 * self.r) as usize, VACANT);
        self.len = 0;
        self.failed.clear();
        self.stats = InsertStats::default();
    }

    /// Run the sorted-dedup bulk insertion loop (the body of
    /// [`build_sorted_dedup`]) against this builder. Elements must be
    /// sorted and duplicate-free; the builder must be sized for them.
    pub fn extend_sorted_dedup(&mut self, elements: &[u32]) {
        for &x in elements {
            self.stats.elements += 1;
            let mut placed = true;
            for _copy in 0..2 {
                if let Err(nestless) = self.insert_copy(x) {
                    self.recover(x, nestless);
                    placed = false;
                    break;
                }
            }
            if placed {
                self.len += 1;
            }
        }
    }

    /// Write the compressed byte representation into `bytes` (which must
    /// already be [`EMPTY_SLOT`]-filled and exactly `3·r` long).
    ///
    /// The indicator bits are computed here in one pass: for each placed
    /// copy we locate the element's other copy and apply the cyclic rule
    /// of Fig. 3 (`b = 1` iff the other copy is in the next table).
    fn materialize(&self, bytes: &mut [u8]) {
        debug_assert_eq!(bytes.len(), self.occupants.len());
        for (idx, &occ) in self.occupants.iter().enumerate() {
            if occ == VACANT {
                continue;
            }
            let here = self.params.table_of_slot(idx);
            let pi = self.params.perms().apply(here, occ as u64);
            debug_assert_eq!(self.params.slot_of(here, pi, self.r), idx);
            // Locate the other copy among the other two tables.
            let mut other = usize::MAX;
            for t in 0..TABLES {
                if t == here {
                    continue;
                }
                let cand = self
                    .params
                    .slot_of(t, self.params.perms().apply(t, occ as u64), self.r);
                if self.occupants[cand] == occ {
                    debug_assert_eq!(other, usize::MAX, "element {occ} placed 3 times");
                    other = t;
                }
            }
            assert_ne!(other, usize::MAX, "element {occ} has a single copy");
            let indicator = slot::indicator_for(here, other);
            bytes[idx] = slot::pack(self.params.key_of(pi), indicator);
        }
    }

    /// Materialize the compressed byte representation and finish.
    pub fn finish(self) -> BuildOutcome {
        let width = self.occupants.len();
        let mut bytes = vec![EMPTY_SLOT; width].into_boxed_slice();
        self.materialize(&mut bytes);
        let batmap = Batmap::from_raw_parts(self.params, self.r, bytes, self.len);
        BuildOutcome {
            batmap,
            failed: self.failed,
            stats: self.stats,
        }
    }

    /// Materialize straight into caller-owned storage (an arena slot) and
    /// hand back everything except the bytes. `out` must be exactly
    /// `3·r` long; it is overwritten entirely. The builder stays usable —
    /// call [`BatmapBuilder::reset`] before building the next set.
    pub fn finish_into(&mut self, out: &mut [u8]) -> ArenaSetOutcome {
        assert_eq!(
            out.len(),
            self.occupants.len(),
            "arena slot width must match the builder's 3·r"
        );
        out.fill(EMPTY_SLOT);
        self.materialize(out);
        ArenaSetOutcome {
            len: self.len,
            failed: std::mem::take(&mut self.failed),
            stats: std::mem::take(&mut self.stats),
        }
    }
}

/// Build a batmap from a slice of (possibly unsorted, possibly duplicate)
/// elements. The common entry point.
pub fn build(params: ParamsHandle, elements: &[u32]) -> BuildOutcome {
    let mut sorted = elements.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    build_sorted_dedup(params, &sorted)
}

/// Build from elements known to be sorted and duplicate-free (skips the
/// `contains` pre-check per insert).
pub fn build_sorted_dedup(params: ParamsHandle, elements: &[u32]) -> BuildOutcome {
    let mut builder = BatmapBuilder::with_capacity(params, elements.len());
    builder.extend_sorted_dedup(elements);
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BatmapParams;
    use std::sync::Arc;

    fn params(m: u64) -> ParamsHandle {
        Arc::new(BatmapParams::new(m, 0xBA7_0001))
    }

    #[test]
    fn insert_places_two_copies() {
        let p = params(10_000);
        let mut b = BatmapBuilder::with_capacity(p.clone(), 16);
        assert_eq!(b.insert(42), InsertOutcome::Inserted);
        let copies = (0..TABLES)
            .filter(|&t| b.occupants[b.candidate(t, 42)] == 42)
            .count();
        assert_eq!(copies, 2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn duplicate_detected() {
        let p = params(10_000);
        let mut b = BatmapBuilder::with_capacity(p, 16);
        assert_eq!(b.insert(7), InsertOutcome::Inserted);
        assert_eq!(b.insert(7), InsertOutcome::Duplicate);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn build_random_sets_no_failures_at_paper_load() {
        // r = 2·2^⌈log n⌉ gives load ≤ 1/3; failures should be absent
        // for these sizes.
        let p = params(100_000);
        for size in [0usize, 1, 2, 10, 100, 1000, 5000] {
            let elements: Vec<u32> = (0..size as u32).map(|i| i * 17 % 100_000).collect();
            let mut sorted = elements.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let out = build(p.clone(), &elements);
            assert!(out.failed.is_empty(), "size={size}: {:?}", out.failed);
            assert_eq!(out.batmap.len(), sorted.len(), "size={size}");
        }
    }

    #[test]
    fn builder_contains_tracks_membership() {
        let p = params(50_000);
        let mut b = BatmapBuilder::with_capacity(p, 128);
        for x in 0..100u32 {
            assert!(!b.contains(x));
            b.insert(x);
            assert!(b.contains(x));
        }
    }

    #[test]
    fn tiny_max_loop_forces_failures() {
        // Failure injection: MaxLoop = 1 with a packed table must fail
        // for some elements, and every failed element must be absent
        // while every non-failed element must remain fully placed.
        let p = Arc::new(BatmapParams::with_max_loop(1 << 15, 0xFEED, 1));
        let elements: Vec<u32> = (0..4000u32).collect();
        let out = build_sorted_dedup(p, &elements);
        assert_eq!(out.batmap.len() + out.failed.len(), elements.len());
        assert_eq!(out.stats.failures as usize, out.failed.len());
        for &f in &out.failed {
            assert!(!out.batmap.contains(f), "failed {f} still present");
        }
        let mut failed_sorted = out.failed.clone();
        failed_sorted.sort_unstable();
        for &x in &elements {
            if failed_sorted.binary_search(&x).is_err() {
                assert!(out.batmap.contains(x), "{x} lost without being reported");
            }
        }
    }

    #[test]
    fn moves_accounting_reasonable() {
        let p = params(100_000);
        let out = build(p, &(0..2000u32).collect::<Vec<_>>());
        // 2 copies per element, ≥ 1 move per copy.
        assert!(out.stats.moves >= 2 * 2000);
        assert_eq!(out.stats.elements, 2000);
        // At the paper's load factor the average transcript is O(1):
        // allow a generous constant.
        assert!(
            out.stats.moves < 2000 * 40,
            "average transcript too long: {} moves",
            out.stats.moves
        );
    }

    #[test]
    fn finish_sets_exactly_one_indicator_per_element() {
        let p = params(65_536);
        let elements: Vec<u32> = (0..3000u32).map(|i| i * 21 % 65_536).collect();
        let out = build(p, &elements);
        let set: std::collections::BTreeSet<u32> = elements.into_iter().collect();
        let ones = out
            .batmap
            .as_bytes()
            .iter()
            .filter(|&&b| slot::indicator(b))
            .count();
        assert_eq!(ones, set.len());
    }

    #[test]
    #[should_panic]
    fn out_of_universe_panics() {
        let p = params(100);
        let mut b = BatmapBuilder::with_capacity(p, 4);
        b.insert(100);
    }
}
