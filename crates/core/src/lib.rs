//! # batmap — the BATMAP set layout
//!
//! Rust implementation of the data structure from *A New Data Layout for
//! Set Intersection on GPUs* (Amossen & Pagh, IPDPS 2011).
//!
//! A **batmap** stores each element of a set in 2 of 3 cuckoo hash
//! tables that are shared (same hash functions) across *all* sets of a
//! universe. Any element present in two sets is then guaranteed to
//! occupy at least one common position, so the intersection size of two
//! batmaps can be computed by a fixed, data-independent, position-by-
//! position sweep — no branches, no random access, perfect for SIMD/GPU
//! execution. A per-slot indicator bit (cyclic-order trick, §II) makes
//! the sweep count every common element exactly once, and an 8-bit
//! compression (§III-A) packs four slots per 32-bit word while keeping
//! counts exact.
//!
//! ## Quick start
//!
//! ```
//! use batmap::{Batmap, BatmapParams};
//! use std::sync::Arc;
//!
//! // One universe of m = 100_000 transaction ids.
//! let params = Arc::new(BatmapParams::new(100_000, 0xB47));
//!
//! // Build batmaps for two sets (tidlists).
//! let a = Batmap::build(params.clone(), &[10, 20, 30, 40, 99_999]).batmap;
//! let b = Batmap::build(params.clone(), &[20, 40, 60, 99_999]).batmap;
//!
//! // Count the intersection with the branch-free positional sweep.
//! assert_eq!(a.intersect_count(&b), 3);
//! ```
//!
//! ## Module map
//!
//! * [`params`] — universe parameters: shared permutations, compression
//!   shift, range policy.
//! * [`hash`] — the seeded Feistel permutations `π₁..π₃`.
//! * [`slot`] — the 8-bit slot encoding (7-bit key + indicator bit).
//! * [`builder`] — cuckoo 2-of-3 construction, failure handling.
//! * [`batmap`] — the immutable [`Batmap`] itself, and the [`AsSlots`]
//!   storage seam every counting path is generic over.
//! * [`arena`] — contiguous corpus storage: [`arena::BatmapArena`],
//!   zero-copy [`arena::BatmapRef`] views, versioned snapshot
//!   persistence, and the [`arena::SnapshotLoad`] knob selecting the
//!   heap-buffered or mmap-backed load path (`BATMAP_LOAD`).
//! * `mmap` — the read-only memory-map wrapper behind
//!   [`arena::SnapshotLoad::Mmap`] (64-bit Unix only, hence no doc
//!   link).
//! * [`repr`] — per-set storage representations ([`SetRepr`]: batmap,
//!   uncompressed bitmap, sorted tidlist), the density-based
//!   [`ReprPolicy`] selection knob (`BATMAP_REPR`), and the typed
//!   [`SetView`] the mixed kernels consume.
//! * [`kernel`] — the pluggable [`kernel::MatchKernel`] backend layer
//!   (scalar reference, SWAR-u32, SWAR-u64, NEON, SSE2, AVX2, AVX-512;
//!   runtime-selectable with CPU-feature detection).
//! * `simd` — the true-SIMD SSE2/AVX2/AVX-512 kernels (`x86_64` only).
//! * `neon` — the NEON kernel (`aarch64` only, baseline SIMD there).
//! * [`tuning`] — the persisted [`tuning::TuningProfile`] (tile side,
//!   sweep block, prefetch distance) measured by `batmap-tune` and
//!   loaded through `BATMAP_TUNING`.
//! * [`parallel`] — the [`Parallelism`] knob host-parallel phases share
//!   (`BATMAP_THREADS` override, same plumbing style as the kernels).
//! * [`swar`] — the paper's raw branch-free formulations (backend
//!   internals and ablation material).
//! * [`intersect`] — equal-width and folded intersection counting.
//! * [`uncompressed`] — the abstract `3×r` reference structure.
//! * [`update`] — in-place insert/remove with automatic growth.
//! * [`delta`] — mutable delta sets layered over an immutable corpus
//!   (the storage half of the live write path), with the
//!   inclusion–exclusion correction that keeps layered pair counts
//!   exact.
//! * [`analysis`] — empirical validation of the §II-B bounds.
//! * [`multiway`] — the §V extensions: d-of-(d+1) batmaps (with the
//!   batched one-vs-many driver the levelwise miner uses) and probe
//!   counting.
//! * [`space`] — space accounting vs the information-theoretic minimum.
//!
//! ## Environment overrides
//!
//! This is the canonical description of the runtime knobs every binary
//! in the workspace honours; README and the figure binaries point
//! here.
//!
//! ### `BATMAP_KERNEL` — match-count backend
//!
//! `BATMAP_KERNEL=scalar|swar32|swar64|neon|sse2|avx2|avx512` steers
//! what [`KernelBackend::Auto`] resolves to. Resolution rules
//! ([`KernelBackend::resolve_override`] is the pure form):
//!
//! 1. An explicit backend ([`params::BatmapParams::with_kernel`],
//!    `MinerConfig::kernel`, `--kernel NAME`) wins; `Auto` consults the
//!    environment.
//! 2. `Auto` with no (valid) override resolves to the **widest backend
//!    available on this CPU**: avx512 where detected, else avx2, else
//!    sse2 on any x86_64; neon on aarch64; swar64 elsewhere.
//! 3. Requesting a backend the CPU lacks (e.g. `avx512` on a host
//!    without AVX-512BW) **downgrades** to the widest available one
//!    with a one-time warning. Counts are backend-independent, so a
//!    downgrade only changes speed, never results.
//! 4. An unparseable value is ignored, also with a one-time warning.
//!
//! The variable is read once per process and cached.
//!
//! ### `BATMAP_LOAD` — snapshot load path
//!
//! `BATMAP_LOAD=buffered|mmap` steers what
//! [`arena::SnapshotLoad::Auto`] resolves to — how snapshot files are
//! brought into memory by the load-aware open paths
//! ([`arena::BatmapArena::read_from_file_with`], the `pairminer`
//! corpus open, and the server's corpus loading):
//!
//! 1. An explicit knob ([`EngineOptions::load`](EngineOptions#structfield.load),
//!    `--load NAME`) wins; `Auto` consults the environment.
//! 2. `Auto` with no (valid) override resolves to **`buffered`** — the
//!    eager read that checksums the whole payload before serving.
//! 3. `mmap` maps the file read-only and defers the payload checksum
//!    to an explicit [`arena::BatmapArena::verify`] call, so a cold
//!    multi-GiB corpus serves its first query in milliseconds. Headers
//!    and directories are still validated eagerly. On platforms
//!    without the mmap backing (non-Unix or 32-bit), `mmap` downgrades
//!    to `buffered` with a one-time warning.
//! 4. An unparseable value is ignored, also with a one-time warning.
//!
//! The variable is read once per process and cached.
//!
//! ### `BATMAP_TUNING` — autotuned kernel/tile profile
//!
//! `BATMAP_TUNING=<path.json>` points at a [`tuning::TuningProfile`]
//! written by the `batmap-tune` binary (tile side, one-vs-many sweep
//! block, software-prefetch distance). When set, the profile steers
//! the miner's default tile size and the batched one-vs-many driver;
//! when unset, or when the file is missing/unparseable (one-time
//! warning), the built-in defaults apply. Values are clamped to safe
//! ranges on load, and none of them affects counts — like every other
//! knob here it is a pure speed choice. The variable is read once per
//! process and cached.
//!
//! ### `BATMAP_THREADS` — host parallelism
//!
//! `BATMAP_THREADS=serial|<count>` steers what [`Parallelism::Auto`]
//! resolves to, for every host-parallel phase (batmap construction,
//! the parallel tiled CPU mining engine, the levelwise miner's
//! candidate counting):
//!
//! 1. An explicit knob (`Parallelism::Serial` / `Parallelism::Threads`,
//!    `--threads`, `MinerConfig::threads`) wins; `Auto` consults the
//!    environment.
//! 2. `Auto` with no (valid) override follows the **ambient rayon
//!    pool** — so `hpcutil::scoped_pool(cores, …)` sweeps keep working
//!    unchanged.
//! 3. `serial` (or `1`) selects strictly sequential execution; `0` and
//!    `auto` mean `Auto`; an unparseable value is ignored with a
//!    one-time warning. The variable is read once per process and
//!    cached.
//!
//! ### `BATMAP_REPR` — storage representation policy
//!
//! `BATMAP_REPR=auto|batmap|bitmap|tidlist|hybrid` steers what
//! [`ReprPolicy::Auto`] resolves to — which layout each set of a
//! preprocessed corpus is stored in (see [`repr`] for the selection
//! thresholds):
//!
//! 1. An explicit policy ([`params::BatmapParams::with_repr`],
//!    `MinerConfig::repr`, `--repr NAME`) wins; `Auto` consults the
//!    environment.
//! 2. `Auto` with no (valid) override resolves to **`batmap`** — the
//!    legacy pure-batmap corpus; hybrid storage is opt-in.
//! 3. `hybrid` picks the cheapest representation per set by density
//!    (dense → bitmap, sparse tail → tidlist, middle band → batmap);
//!    `bitmap`/`tidlist` force one layout everywhere (ablation modes).
//! 4. An unparseable value is ignored with a warning, falling back to
//!    `batmap`. The variable is read once per process and cached.
//!
//! The GPU-sim engine requires an all-batmap corpus, so it pins
//! `batmap` regardless of this knob (with a one-time warning if the
//! configuration asked for something else).
//!
//! None of these knobs ever changes *what* is computed — all are pure
//! speed/placement choices, which is why they are runtime data rather
//! than compile-time features. In particular every representation's
//! intersection kernel is exact, so hybrid and pure-batmap runs report
//! identical counts.

#![warn(missing_docs)]

pub mod analysis;
pub mod arena;
pub mod batmap;
pub mod builder;
pub mod collection;
pub mod delta;
pub mod error;
pub mod hash;
pub mod intersect;
pub mod kernel;
#[cfg(all(unix, target_pointer_width = "64"))]
pub mod mmap;
pub mod multiway;
#[cfg(target_arch = "aarch64")]
pub mod neon;
pub mod options;
pub mod parallel;
pub mod params;
pub mod repr;
#[cfg(target_arch = "x86_64")]
pub mod simd;
pub mod slot;
pub mod space;
pub mod swar;
pub mod tuning;
pub mod uncompressed;
pub mod update;

pub use arena::{ArenaBuilder, ArenaStage, BatmapArena, BatmapRef, SetSpec, SnapshotLoad};
pub use batmap::{AsSlots, Batmap};
pub use builder::{ArenaSetOutcome, BatmapBuilder, BuildOutcome, InsertOutcome, InsertStats};
pub use collection::BatmapCollection;
pub use delta::{layered_pair_count, DeltaRegion, DeltaSet};
pub use error::{BatmapError, SnapshotError};
/// Fault-injection sites (re-export of [`hpcutil::faultpoint`]): arm
/// named sites with error/panic/delay actions — explicitly or via
/// `BATMAP_FAULTPOINTS` on the first [`EngineOptions::resolve`] — and
/// mark sites with `hpcutil::fault_point!`.
pub use hpcutil::faultpoint as fault;
pub use kernel::{available_backends, KernelBackend, MatchKernel, ALL_BACKENDS};
pub use multiway::{intersect_count_probe, MultiwayBatmap, MultiwayParams};
pub use options::EngineOptions;
pub use parallel::Parallelism;
pub use params::{BatmapParams, ParamsHandle, TABLES};
pub use repr::{BitmapRef, ReprPolicy, SetRepr, SetView, TidlistRef, ALL_REPR_POLICIES};
pub use tuning::TuningProfile;
pub use uncompressed::UncompressedBatmap;
pub use update::UpdateOutcome;
