//! Host-parallelism selection, mirroring the kernel-backend plumbing.
//!
//! The paper's multicore experiments (Figs. 9 and 11) sweep 1/2/4/8
//! cores; everything in this workspace that fans work across host cores
//! — batmap construction, the tiled CPU mining engine, the perf harness
//! — takes a [`Parallelism`] knob instead of hard-coding a pool size.
//! Like [`crate::KernelBackend`], the choice is runtime data: `Auto`
//! defers to a `BATMAP_THREADS` environment override and otherwise uses
//! whatever rayon pool is ambient (so `hpcutil::scoped_pool` sweeps
//! keep working unchanged).

use std::fmt;
use std::sync::OnceLock;

/// How many host threads a parallel phase may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// Use the `BATMAP_THREADS` environment override if set, otherwise
    /// the ambient rayon pool (host parallelism unless a scoped pool is
    /// installed).
    #[default]
    Auto,
    /// Strictly sequential execution (no worker threads at all) — the
    /// baseline the speedup plots and equivalence tests compare
    /// against.
    Serial,
    /// Exactly this many worker threads (≥ 2; lower values normalize to
    /// [`Parallelism::Serial`] via [`Parallelism::threads`]).
    Threads(usize),
}

impl Parallelism {
    /// Canonical constructor from a raw thread count: `0` means
    /// [`Parallelism::Auto`], `1` means [`Parallelism::Serial`].
    pub fn threads(n: usize) -> Self {
        match n {
            0 => Parallelism::Auto,
            1 => Parallelism::Serial,
            n => Parallelism::Threads(n),
        }
    }

    /// Parse a knob value as used by `--threads` and `BATMAP_THREADS`:
    /// `auto`, `serial`, or a thread count.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(Parallelism::Auto),
            "serial" => Some(Parallelism::Serial),
            n => n.parse::<usize>().ok().map(Parallelism::threads),
        }
    }

    /// The thread count this knob pins, if it pins one: `Serial` and
    /// `Threads(n)` always do; `Auto` only under a valid
    /// `BATMAP_THREADS` override. `None` means "use the ambient pool".
    pub fn pinned(self) -> Option<usize> {
        match self {
            Parallelism::Serial => Some(1),
            // `Threads(n)` is normally ≥ 2 (the `threads()` constructor
            // normalizes 0/1 away), but the variant is public: honour a
            // directly-constructed `Threads(1)`/`Threads(0)` as one
            // worker rather than silently running two.
            Parallelism::Threads(n) => Some(n.max(1)),
            Parallelism::Auto => env_override().and_then(Parallelism::pinned),
        }
    }

    /// Concrete worker count given the ambient pool size (callers pass
    /// `rayon::current_num_threads()`); always ≥ 1.
    pub fn resolve_with(self, ambient: usize) -> usize {
        self.pinned().unwrap_or(ambient.max(1))
    }

    /// Stable name, inverse of [`Parallelism::from_name`].
    pub fn name(self) -> String {
        match self {
            Parallelism::Auto => "auto".to_string(),
            Parallelism::Serial => "serial".to_string(),
            Parallelism::Threads(n) => n.to_string(),
        }
    }
}

/// The cached `BATMAP_THREADS` override (`None` when unset, invalid, or
/// explicitly `auto`).
fn env_override() -> Option<Parallelism> {
    static OVERRIDE: OnceLock<Option<Parallelism>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        let var = crate::options::threads_env()?;
        match Parallelism::from_name(var) {
            Some(Parallelism::Auto) | None => {
                if Parallelism::from_name(var).is_none() {
                    eprintln!(
                        "warning: ignoring invalid BATMAP_THREADS={var} \
                         (expected auto|serial|<count>); using ambient parallelism"
                    );
                }
                None
            }
            Some(pinned) => Some(pinned),
        }
    })
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

// Serialized as the knob name (`auto`, `serial`, or a count) so stored
// universe parameters stay readable, matching the kernel-backend
// treatment.
impl serde::Serialize for Parallelism {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.name())
    }
}

impl<'de> serde::Deserialize<'de> for Parallelism {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let name = String::deserialize(d)?;
        Parallelism::from_name(&name)
            .ok_or_else(|| serde::de::Error::custom(format!("unknown parallelism `{name}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for p in [
            Parallelism::Auto,
            Parallelism::Serial,
            Parallelism::Threads(8),
        ] {
            assert_eq!(Parallelism::from_name(&p.name()), Some(p));
        }
        assert_eq!(Parallelism::from_name("0"), Some(Parallelism::Auto));
        assert_eq!(Parallelism::from_name("1"), Some(Parallelism::Serial));
        assert_eq!(Parallelism::from_name("4"), Some(Parallelism::Threads(4)));
        assert_eq!(Parallelism::from_name("SERIAL"), Some(Parallelism::Serial));
        assert_eq!(Parallelism::from_name("fast"), None);
    }

    #[test]
    fn resolution_honours_pinning() {
        assert_eq!(Parallelism::Serial.resolve_with(16), 1);
        assert_eq!(Parallelism::Threads(4).resolve_with(16), 4);
        assert_eq!(Parallelism::Serial.pinned(), Some(1));
        assert_eq!(Parallelism::Threads(6).pinned(), Some(6));
        // Directly-constructed degenerate counts pin one worker; they
        // do not silently inflate to 2.
        assert_eq!(Parallelism::Threads(1).pinned(), Some(1));
        assert_eq!(Parallelism::Threads(0).pinned(), Some(1));
        assert_eq!(Parallelism::Threads(1).resolve_with(16), 1);
        // Auto without an override follows the ambient pool.
        if crate::options::threads_env().is_none() {
            assert_eq!(Parallelism::Auto.resolve_with(3), 3);
            assert_eq!(Parallelism::Auto.resolve_with(0), 1);
        }
    }

    #[test]
    fn serde_as_name() {
        let text = serde_json::to_string(&Parallelism::Threads(8)).unwrap();
        assert_eq!(text, "\"8\"");
        let back: Parallelism = serde_json::from_str(&text).unwrap();
        assert_eq!(back, Parallelism::Threads(8));
        let auto: Parallelism = serde_json::from_str("\"auto\"").unwrap();
        assert_eq!(auto, Parallelism::Auto);
    }
}
