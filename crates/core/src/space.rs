//! Space accounting against the information-theoretic minimum.
//!
//! §I-A claims batmap space is "within a small factor of the
//! information theoretical minimum for representing sets of a given
//! size", and §III-A derives when the 8-bit compression beats the
//! uncompressed layout (`|Sᵢ| ≥ (m+1)/256`). This module makes those
//! statements computable:
//!
//! * [`info_theoretic_bits`] — `log₂ C(m, n)`, the entropy of an
//!   n-subset of an m-universe,
//! * [`batmap_bits`] — the compressed representation's actual bits,
//! * [`SpaceReport`] — the ratio table the `space_model` experiments
//!   print.

use crate::params::BatmapParams;

/// `log₂ (m choose n)` via a numerically stable sum of logs.
///
/// Exact enough for ratio reporting (error < 1e-9 relative); cost
/// O(min(n, m−n)).
pub fn info_theoretic_bits(m: u64, n: u64) -> f64 {
    assert!(n <= m, "cannot choose {n} of {m}");
    let k = n.min(m - n);
    let mut bits = 0.0f64;
    for i in 0..k {
        bits += ((m - i) as f64).log2() - ((i + 1) as f64).log2();
    }
    bits
}

/// Bits the compressed batmap of an `n`-element set occupies under
/// `params` (8 bits per slot, `3·r` slots).
pub fn batmap_bits(params: &BatmapParams, n: usize) -> u64 {
    3 * params.range_for(n) * 8
}

/// Bits of the uncompressed strawman (32-bit slot values, natural
/// range with no compression floor).
pub fn uncompressed_bits(n: usize) -> u64 {
    3 * 2 * (n.max(1) as u64).next_power_of_two() * 32
}

/// One row of the space model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaceReport {
    /// Set size.
    pub n: u64,
    /// Set density `n/m`.
    pub density: f64,
    /// Entropy bits `log₂ C(m,n)`.
    pub entropy_bits: f64,
    /// Compressed batmap bits.
    pub batmap_bits: u64,
    /// Uncompressed batmap bits.
    pub uncompressed_bits: u64,
}

impl SpaceReport {
    /// Batmap bits per entropy bit (the paper's "small factor").
    pub fn overhead(&self) -> f64 {
        if self.entropy_bits == 0.0 {
            f64::INFINITY
        } else {
            self.batmap_bits as f64 / self.entropy_bits
        }
    }
}

/// Evaluate the model over a density sweep at fixed `m`.
pub fn sweep(params: &BatmapParams, densities: &[f64]) -> Vec<SpaceReport> {
    let m = params.m();
    densities
        .iter()
        .map(|&d| {
            let n = ((m as f64 * d) as u64).max(1);
            SpaceReport {
                n,
                density: d,
                entropy_bits: info_theoretic_bits(m, n),
                batmap_bits: batmap_bits(params, n as usize),
                uncompressed_bits: uncompressed_bits(n as usize),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_bits_known_values() {
        // C(4,2) = 6 → log2 6.
        assert!((info_theoretic_bits(4, 2) - 6f64.log2()).abs() < 1e-12);
        // C(m, 0) = 1 → 0 bits; C(m, m) = 1 → 0 bits.
        assert_eq!(info_theoretic_bits(100, 0), 0.0);
        assert!(info_theoretic_bits(100, 100).abs() < 1e-9);
        // Symmetry.
        let a = info_theoretic_bits(1000, 10);
        let b = info_theoretic_bits(1000, 990);
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn entropy_upper_bound_m_bits() {
        // A subset of an m-universe never needs more than m bits.
        for n in [1u64, 100, 500, 1000] {
            assert!(info_theoretic_bits(1000, n) <= 1000.0);
        }
    }

    #[test]
    fn overhead_is_small_factor_above_break_even() {
        // The paper's claim: above density 2^-8 the compressed batmap is
        // within a small constant factor of the entropy.
        let params = BatmapParams::new(1 << 20, 7);
        for density in [0.005f64, 0.01, 0.05, 0.2] {
            let n = ((1u64 << 20) as f64 * density) as u64;
            let report = SpaceReport {
                n,
                density,
                entropy_bits: info_theoretic_bits(1 << 20, n),
                batmap_bits: batmap_bits(&params, n as usize),
                uncompressed_bits: uncompressed_bits(n as usize),
            };
            // The factor decomposes as (3r/n slots/element) × 8 bits
            // over ≈ log₂(1/d) + 1.44 entropy bits per element. With
            // r < 4n above the break-even density, bits/element ≤ 96,
            // so overhead ≤ 96 / log₂(1/d) up to rounding — a constant
            // in m, as claimed.
            let per_elem = report.batmap_bits as f64 / n as f64;
            assert!(
                per_elem <= 96.0 + 1e-9,
                "density {density}: {per_elem} bits/elem"
            );
            let bound = 96.0 / (1.0 / density).log2() * 1.15;
            assert!(
                report.overhead() < bound,
                "density {density}: overhead {} exceeds {bound}",
                report.overhead()
            );
        }
    }

    #[test]
    fn compression_beats_uncompressed_above_threshold() {
        // §III-A: actual space reduction iff |S| ≥ ~(m+1)/256.
        let m = 1u64 << 20;
        let params = BatmapParams::new(m, 7);
        let dense = (m / 64) as usize; // density 2^-6 > 2^-8
        let sparse = (m / 1024) as usize; // density 2^-10 < 2^-8
        assert!(batmap_bits(&params, dense) < uncompressed_bits(dense));
        assert!(batmap_bits(&params, sparse) > uncompressed_bits(sparse));
    }

    #[test]
    fn sweep_produces_monotone_entropy() {
        let params = BatmapParams::new(1 << 16, 3);
        let reports = sweep(&params, &[0.001, 0.01, 0.1, 0.4]);
        for w in reports.windows(2) {
            assert!(w[1].entropy_bits > w[0].entropy_bits);
        }
    }
}
