//! Read-only memory-mapped files: the zero-copy backing behind
//! [`crate::arena::SnapshotLoad::Mmap`].
//!
//! A [`MmapFile`] maps a whole snapshot file `PROT_READ`/`MAP_PRIVATE`
//! and exposes it as `&[u8]`. Nothing is read up front — the kernel
//! pages bytes in on first touch — which is exactly what the lazy
//! snapshot-verification story needs: headers and directories (a few
//! KiB) are touched and validated eagerly at open time, while the
//! multi-GiB payload is faulted in on demand by the queries that
//! actually sweep it, or all at once by an explicit
//! [`crate::arena::BatmapArena::verify`].
//!
//! The syscalls are declared directly (`extern "C"` against the
//! platform libc every Rust binary on Unix already links) rather than
//! through a bindings crate, keeping the workspace dependency-free.
//! The module is compiled only on 64-bit Unix — `off_t`, `size_t` and
//! the mmap flag values below are written for the LP64 Unix ABI — and
//! [`crate::arena::SnapshotLoad`] downgrades to the buffered path with
//! a warning everywhere else.
//!
//! ## Safety contract
//!
//! `&[u8]` handed out by [`MmapFile::bytes`] is only sound while the
//! underlying file is not truncated or rewritten in place by another
//! process (shrinking the file would turn reads of the tail into
//! `SIGBUS`). Snapshot files are written via
//! [`crate::arena::atomic_write`] — a sibling temp file atomically
//! renamed over the target — so a concurrently *republished* snapshot
//! leaves the mapped inode intact; the mapping keeps serving the old,
//! complete snapshot until dropped. Direct in-place mutation of a
//! snapshot being served is outside the supported contract (exactly as
//! it is for the buffered path mid-read).

use std::ffi::c_void;
use std::io;
use std::os::unix::io::AsRawFd;
use std::path::Path;

// LP64 Unix ABI (Linux, macOS, BSDs on 64-bit targets): int is 32-bit,
// pointers/size_t are 64-bit, off_t is 64-bit.
extern "C" {
    fn mmap(
        addr: *mut c_void,
        length: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, length: usize) -> i32;
}

const PROT_READ: i32 = 1;
const MAP_PRIVATE: i32 = 2;
const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

/// A whole file mapped read-only into the address space. `Send + Sync`
/// (the pages are immutable from this process's point of view) and
/// usually shared as `Arc<MmapFile>` so several arenas — or an arena
/// and the side tables of the corpus snapshot embedding it — can view
/// disjoint windows of one mapping.
#[derive(Debug)]
pub struct MmapFile {
    /// Base address; null iff `len == 0` (POSIX rejects zero-length
    /// mappings, so empty files skip the syscall entirely).
    ptr: *mut c_void,
    len: usize,
}

// SAFETY: the mapping is PROT_READ — no interior mutability, and the
// pages outlive every borrow because they are only unmapped in Drop.
unsafe impl Send for MmapFile {}
// SAFETY: shared reads of immutable pages are data-race free.
unsafe impl Sync for MmapFile {}

impl MmapFile {
    /// Map `path` read-only in its entirety.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = std::fs::File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::other("file too large to map"))?;
        if len == 0 {
            return Ok(MmapFile {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: a fresh anonymous-address read-only mapping of a file
        // descriptor we own for the duration of the call; length is the
        // file's current size and the offset 0 is trivially
        // page-aligned. The fd may be closed after mmap returns — the
        // mapping keeps its own reference to the inode.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(MmapFile { ptr, len })
    }

    /// Length of the mapped file in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length file (mapped as an empty slice without a
    /// syscall).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes. Page-aligned base (so any window whose file
    /// offset is a multiple of an alignment `A ≤ page size` is
    /// `A`-aligned in memory — the snapshot format 64-byte-aligns its
    /// payload for exactly this reason).
    pub fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes (established in `open`, released only in Drop); any
        // byte pattern is a valid `u8`.
        unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
    }
}

impl Drop for MmapFile {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: `ptr`/`len` describe the mapping created in
            // `open`; after Drop no `&[u8]` borrow can outlive `self`
            // (lifetimes on `bytes()` guarantee it).
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_file_contents_exactly() {
        let dir = std::env::temp_dir().join(format!("batmap-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.bin");
        let data: Vec<u8> = (0..100_000u32).map(|i| (i * 37) as u8).collect();
        std::fs::write(&path, &data).unwrap();
        let map = MmapFile::open(&path).unwrap();
        assert_eq!(map.len(), data.len());
        assert_eq!(map.bytes(), &data[..]);
        // Page-aligned base.
        assert_eq!(map.bytes().as_ptr() as usize % 4096, 0);
        drop(map);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_file_maps_as_empty_slice() {
        let dir = std::env::temp_dir().join(format!("batmap-mmap-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let map = MmapFile::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.bytes(), &[] as &[u8]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(MmapFile::open(Path::new("/nonexistent/batmap.snap")).is_err());
    }
}
