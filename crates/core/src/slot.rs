//! The 8-bit slot encoding (§III-A).
//!
//! Each batmap slot is one byte:
//!
//! ```text
//!   bit 7          bits 6..0
//! +-----------+-----------------+
//! | indicator |   7-bit key     |
//! +-----------+-----------------+
//! ```
//!
//! * The *key* is `πₜ(x) >> s` — the most significant bits of the
//!   permuted element; the slot's position supplies the rest.
//! * The *indicator* is the §II cyclic-order bit: set iff the element's
//!   other copy lives in the **next** table of the cyclic order
//!   `1 → 2 → 3 → 1`. Exactly one of an element's two copies has it set,
//!   which is what makes the SWAR count tally each common element once.
//! * The empty slot ⊥ is key `127` with the indicator clear
//!   ([`crate::params::EMPTY_SLOT`]).

use crate::params::NULL_KEY;

/// Bit mask of the indicator bit within a slot byte.
pub const INDICATOR_BIT: u8 = 0x80;

/// Bit mask of the key bits within a slot byte.
pub const KEY_MASK: u8 = 0x7F;

/// Pack a key and indicator into a slot byte.
#[inline]
pub fn pack(key: u8, indicator: bool) -> u8 {
    debug_assert!(key <= KEY_MASK);
    key | if indicator { INDICATOR_BIT } else { 0 }
}

/// The key bits of a slot byte.
#[inline]
pub fn key(slot: u8) -> u8 {
    slot & KEY_MASK
}

/// The indicator bit of a slot byte.
#[inline]
pub fn indicator(slot: u8) -> bool {
    slot & INDICATOR_BIT != 0
}

/// Whether the slot is the empty slot ⊥.
#[inline]
pub fn is_empty(slot: u8) -> bool {
    key(slot) == NULL_KEY
}

/// The table following `t` in the cyclic order `0 → 1 → 2 → 0`.
#[inline]
pub fn next_table(t: usize) -> usize {
    debug_assert!(t < 3);
    // Branch-free modular increment for t < 3.
    (t + 1) * ((t != 2) as usize)
}

/// Compute the indicator for the copy in table `here`, given the other
/// copy sits in table `other` (§II, Fig. 3).
#[inline]
pub fn indicator_for(here: usize, other: usize) -> bool {
    debug_assert!(here < 3 && other < 3 && here != other);
    next_table(here) == other
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EMPTY_SLOT;

    #[test]
    fn pack_unpack() {
        for k in 0..=KEY_MASK {
            for ind in [false, true] {
                let s = pack(k, ind);
                assert_eq!(key(s), k);
                assert_eq!(indicator(s), ind);
            }
        }
    }

    #[test]
    fn empty_slot_is_null_key_no_indicator() {
        assert!(is_empty(EMPTY_SLOT));
        assert!(!indicator(EMPTY_SLOT));
        assert_eq!(key(EMPTY_SLOT), NULL_KEY);
        // A full slot is never "empty".
        assert!(!is_empty(pack(0, false)));
        assert!(!is_empty(pack(126, true)));
        // The ⊥ key with the indicator set would still be empty-keyed;
        // the builder never produces it, but `is_empty` must classify by
        // key alone.
        assert!(is_empty(pack(NULL_KEY, true)));
    }

    #[test]
    fn cyclic_next() {
        assert_eq!(next_table(0), 1);
        assert_eq!(next_table(1), 2);
        assert_eq!(next_table(2), 0);
    }

    #[test]
    fn indicator_matches_figure3() {
        // Pair {0,1}: copy in 0 has b=1, copy in 1 has b=0.
        assert!(indicator_for(0, 1));
        assert!(!indicator_for(1, 0));
        // Pair {1,2}: copy in 1 has b=1, copy in 2 has b=0.
        assert!(indicator_for(1, 2));
        assert!(!indicator_for(2, 1));
        // Pair {0,2}: copy in 2 has b=1 (next of 2 is 0), copy in 0 b=0.
        assert!(indicator_for(2, 0));
        assert!(!indicator_for(0, 2));
    }

    #[test]
    fn exactly_one_indicator_per_pair() {
        for a in 0..3usize {
            for b in 0..3usize {
                if a != b {
                    assert_eq!(
                        indicator_for(a, b) as u32 + indicator_for(b, a) as u32,
                        1,
                        "pair ({a},{b})"
                    );
                }
            }
        }
    }
}
