//! Shared parameters of a batmap universe.
//!
//! A *universe* is the transaction-id domain `{0..m-1}` plus everything
//! all batmaps over it must agree on: the three permutations, the
//! compression shift `s`, the base range `r₀ = 2^s`, and the insertion
//! loop bound. Two batmaps are only comparable if they were built from
//! the same [`BatmapParams`] (enforced via a cheap fingerprint).

use crate::hash::PermutationTriple;
use crate::kernel::{KernelBackend, MatchKernel};
use crate::options::EngineOptions;
use crate::parallel::Parallelism;
use crate::repr::ReprPolicy;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Number of hash tables (`d=2` copies out of `2d−1=3` tables, §II).
pub const TABLES: usize = 3;

/// The 7-bit key reserved for the empty slot ⊥.
///
/// Deviation from the paper (documented in DESIGN.md §2): the paper does
/// not say how ⊥ is encoded under 8-bit compression; we reserve the
/// all-ones key and choose `s` so no live element can produce it.
pub const NULL_KEY: u8 = 0x7F;

/// Byte value of an empty slot: key = ⊥, indicator bit clear.
pub const EMPTY_SLOT: u8 = NULL_KEY;

/// Default bound on cuckoo-insertion element moves before the insertion
/// is declared failed (§II-A `MaxLoop`). With ranges `r ≥ 2n` failures
/// are rare (§II-B bounds the probability by `O((ε³nr)⁻¹)`), so a modest
/// constant suffices.
pub const DEFAULT_MAX_LOOP: u32 = 128;

/// Parameters shared by every batmap over one universe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatmapParams {
    /// Universe size: elements are `0..m`.
    m: u64,
    /// Compression shift: slots store `π(x) >> s` (7 bits).
    s: u32,
    /// Base (minimum) hash range `r₀ = 2^s`; also the block width of the
    /// interleaved layout (Fig. 4).
    r0: u64,
    /// Cuckoo insertion move bound.
    max_loop: u32,
    /// Master seed (kept for fingerprinting / serialization).
    seed: u64,
    /// Match-count backend used by intersections over this universe.
    /// Excluded from the fingerprint: the backend changes how counts
    /// are computed, never what they are, so differently-configured
    /// batmaps stay comparable. Defaults on absence so parameters
    /// serialized before this field existed stay readable.
    #[serde(default)]
    kernel: KernelBackend,
    /// Host-parallelism knob for phases that build or scan many batmaps
    /// of this universe at once (construction, the tiled CPU engine).
    /// Excluded from the fingerprint for the same reason as the kernel
    /// backend: it changes how work is scheduled, never what is
    /// computed.
    #[serde(default)]
    threads: Parallelism,
    /// Storage-representation policy for corpora built over this
    /// universe (which layout each set's bytes use). Excluded from the
    /// fingerprint like the kernel backend: it changes layout and
    /// speed, never what any intersection counts.
    #[serde(default)]
    repr: ReprPolicy,
    /// The shared permutations π₁..π₃.
    perms: PermutationTriple,
}

impl BatmapParams {
    /// Create parameters for universe `{0..m-1}` with the default
    /// `MaxLoop` bound.
    ///
    /// The shift is the smallest `s ≥ 2` with `m − 1 < 127·2^s`, so every
    /// live 7-bit key is at most 126 and [`NULL_KEY`] is never produced
    /// by a real element. (`s ≥ 2` keeps every batmap word-aligned:
    /// widths are `3·r` bytes with `4 | r`.)
    ///
    /// # Panics
    /// Panics if `m == 0` or `m` exceeds `2^44` (keys must fit 7 bits
    /// above a 37-bit shift; far beyond any realistic transaction count).
    pub fn new(m: u64, seed: u64) -> Self {
        Self::with_max_loop(m, seed, DEFAULT_MAX_LOOP)
    }

    /// Like [`Self::new`] with an explicit `MaxLoop` bound (exposed for
    /// the failure-injection tests and the MaxLoop ablation).
    pub fn with_max_loop(m: u64, seed: u64, max_loop: u32) -> Self {
        Self::with_options(m, seed, max_loop, 2)
    }

    /// Fully explicit constructor: `MaxLoop` plus a floor on the
    /// compression shift.
    ///
    /// A larger shift is always sound (it only widens the minimum
    /// range); the GPU pipeline requires `s ≥ 6` so every batmap width
    /// (`3·r` bytes, `r ≥ 2^s`) is a multiple of the 64-byte slice the
    /// §III-B kernel stages through shared memory.
    pub fn with_options(m: u64, seed: u64, max_loop: u32, min_shift: u32) -> Self {
        assert!(m > 0, "universe must be non-empty");
        assert!(m <= 1 << 44, "universe too large for 7-bit keys");
        assert!(max_loop > 0, "MaxLoop must be positive");
        let mut s = min_shift.max(2);
        while (m - 1) >> s >= NULL_KEY as u64 {
            s += 1;
        }
        BatmapParams {
            m,
            s,
            r0: 1 << s,
            max_loop,
            seed,
            kernel: KernelBackend::Auto,
            threads: Parallelism::Auto,
            repr: ReprPolicy::Auto,
            perms: PermutationTriple::new(m, seed),
        }
    }

    /// Pin all three engine knobs — match-count backend, host
    /// parallelism, storage representation — from one
    /// [`EngineOptions`] value. This is the canonical way to configure
    /// a universe: knobs left at `Auto` in the options follow the
    /// documented resolution order (explicit > `BATMAP_*` environment >
    /// auto) at first use.
    pub fn with_engine_options(mut self, options: EngineOptions) -> Self {
        self.kernel = options.kernel;
        self.threads = options.threads;
        self.repr = options.repr;
        self
    }

    /// The configured engine knobs as one [`EngineOptions`] value
    /// (inverse of [`Self::with_engine_options`]).
    #[inline]
    pub fn engine_options(&self) -> EngineOptions {
        EngineOptions {
            kernel: self.kernel,
            threads: self.threads,
            repr: self.repr,
            // The snapshot load path is a per-process serving concern,
            // not a universe parameter; parameters always report Auto.
            load: crate::arena::SnapshotLoad::Auto,
        }
    }

    /// Pin the match-count backend for every intersection over this
    /// universe. The default, [`KernelBackend::Auto`], picks the widest
    /// kernel *available on this CPU* at first use (AVX2 where
    /// detected, SSE2 on any `x86_64`, SWAR-u64 elsewhere), honouring a
    /// `BATMAP_KERNEL=scalar|swar32|swar64|sse2|avx2` environment
    /// override; pinning an unavailable backend downgrades to the
    /// widest available one rather than failing.
    #[deprecated(
        since = "0.7.0",
        note = "configure through `EngineOptions`: \
                `params.with_engine_options(EngineOptions::auto().kernel(..))`"
    )]
    pub fn with_kernel(mut self, kernel: KernelBackend) -> Self {
        self.kernel = kernel;
        self
    }

    /// The configured match-count backend identifier.
    #[inline]
    pub fn kernel_backend(&self) -> KernelBackend {
        self.kernel
    }

    /// Pin the host-parallelism knob for every parallel phase over this
    /// universe (the default, [`Parallelism::Auto`], honours the
    /// `BATMAP_THREADS` override and otherwise follows the ambient
    /// rayon pool).
    #[deprecated(
        since = "0.7.0",
        note = "configure through `EngineOptions`: \
                `params.with_engine_options(EngineOptions::auto().threads(..))`"
    )]
    pub fn with_threads(mut self, threads: Parallelism) -> Self {
        self.threads = threads;
        self
    }

    /// The configured host-parallelism knob.
    #[inline]
    pub fn parallelism(&self) -> Parallelism {
        self.threads
    }

    /// Pin the storage-representation policy for corpora built over
    /// this universe (the default, [`ReprPolicy::Auto`], honours the
    /// `BATMAP_REPR` override and otherwise keeps the legacy
    /// pure-batmap layout).
    #[deprecated(
        since = "0.7.0",
        note = "configure through `EngineOptions`: \
                `params.with_engine_options(EngineOptions::auto().repr(..))`"
    )]
    pub fn with_repr(mut self, repr: ReprPolicy) -> Self {
        self.repr = repr;
        self
    }

    /// The configured storage-representation policy.
    #[inline]
    pub fn repr_policy(&self) -> ReprPolicy {
        self.repr
    }

    /// The match-count kernel implementation intersections over this
    /// universe dispatch to, as a trait object. The intersection
    /// drivers themselves go through
    /// [`KernelBackend::dispatch`](crate::kernel::KernelBackend::dispatch)
    /// on [`Self::kernel_backend`] instead, so their bulk loops
    /// monomorphize (one indirect step per intersection, none per
    /// word).
    #[inline]
    pub fn kernel(&self) -> &'static dyn MatchKernel {
        self.kernel.kernel()
    }

    /// Universe size `m`.
    #[inline]
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Compression shift `s`.
    #[inline]
    pub fn shift(&self) -> u32 {
        self.s
    }

    /// Base range `r₀ = 2^s`: the minimum per-table range of any batmap,
    /// and the per-table block width of the layout.
    #[inline]
    pub fn r0(&self) -> u64 {
        self.r0
    }

    /// Width in bytes of one layout block (`|B₀| = 3·r₀`, Fig. 4).
    #[inline]
    pub fn block_bytes(&self) -> usize {
        (TABLES as u64 * self.r0) as usize
    }

    /// `MaxLoop` insertion bound.
    #[inline]
    pub fn max_loop(&self) -> u32 {
        self.max_loop
    }

    /// The shared permutations.
    #[inline]
    pub fn perms(&self) -> &PermutationTriple {
        &self.perms
    }

    /// Per-table hash range for a set of `set_size` elements:
    /// `r = max(r₀, 2·2^⌈log₂ size⌉)` (§III-A; the `2·2^⌈log₂|Sᵢ|⌉`
    /// sizing gives load factor ≤ 1/3, comfortably inside the
    /// `r ≥ (2+ε)n` regime of the §II-B analysis; the `r₀` floor is the
    /// compression constraint that causes the low-density uptick in
    /// Fig. 8).
    pub fn range_for(&self, set_size: usize) -> u64 {
        let natural = 2 * (set_size.max(1) as u64).next_power_of_two();
        natural.max(self.r0)
    }

    /// The 7-bit stored key of permuted value `pi`.
    #[inline]
    pub fn key_of(&self, pi: u64) -> u8 {
        debug_assert!(pi < self.m);
        let k = (pi >> self.s) as u8;
        debug_assert!(k < NULL_KEY);
        k
    }

    /// Position of `πₜ(x) = pi` inside a batmap of range `r`, in *slot*
    /// units (bytes), following the interleaved layout of §III-A:
    ///
    /// `h(pi) = |B₀|·⌊(pi mod r)/r₀⌋ + (pi mod r₀) + t·r₀`
    #[inline]
    pub fn slot_of(&self, t: usize, pi: u64, r: u64) -> usize {
        debug_assert!(t < TABLES);
        debug_assert!(r.is_power_of_two() && r >= self.r0);
        let in_range = pi & (r - 1);
        let block = in_range >> self.s;
        let offset = pi & (self.r0 - 1);
        (TABLES as u64 * self.r0 * block + offset + t as u64 * self.r0) as usize
    }

    /// Reconstruct the permuted value `pi` from a slot index and its
    /// stored key, for a batmap of range `r` (inverse of
    /// [`Self::slot_of`] + [`Self::key_of`]). Returns `None` for a slot
    /// holding ⊥ or an inconsistent (impossible) encoding.
    pub fn decode_slot(&self, slot: usize, key: u8, r: u64) -> Option<u64> {
        if key >= NULL_KEY {
            return None;
        }
        let slot = slot as u64;
        let block_bytes = TABLES as u64 * self.r0;
        let block = slot / block_bytes;
        let offset = (slot % block_bytes) % self.r0;
        let in_range = (block << self.s) | offset;
        // `in_range` = pi mod r; the key carries bits [s, s+7).
        // Consistency: overlap bits [s, log2 r) must agree.
        let pi = ((key as u64) << self.s) | (in_range & (self.r0 - 1));
        if pi & (r - 1) != in_range || pi >= self.m {
            return None;
        }
        Some(pi)
    }

    /// Which table a slot index belongs to.
    #[inline]
    pub fn table_of_slot(&self, slot: usize) -> usize {
        ((slot as u64 % (TABLES as u64 * self.r0)) / self.r0) as usize
    }

    /// A fingerprint that two parameter sets share iff they are
    /// interoperable (same universe, seed, shift, MaxLoop).
    pub fn fingerprint(&self) -> u64 {
        // Mix the defining scalars; permutations are derived from them.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [self.m, self.s as u64, self.max_loop as u64, self.seed] {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// Shared handle to universe parameters.
///
/// Building a batmap per item over tens of thousands of items must not
/// clone the permutation tables, so everything downstream holds an `Arc`.
pub type ParamsHandle = Arc<BatmapParams>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_reserves_null_key() {
        for m in [1u64, 5, 127, 128, 508, 509, 1 << 20, 50_000, 10_000_000] {
            let p = BatmapParams::new(m, 1);
            // Largest live key must stay below NULL_KEY.
            assert!(
                (m - 1) >> p.shift() < NULL_KEY as u64,
                "m={m} s={} leaks into the null key",
                p.shift()
            );
            assert!(p.shift() >= 2);
        }
    }

    #[test]
    fn shift_is_minimal() {
        let p = BatmapParams::new(1_000_000, 1);
        if p.shift() > 2 {
            // One bit less would overflow into NULL_KEY.
            assert!((1_000_000u64 - 1) >> (p.shift() - 1) >= NULL_KEY as u64);
        }
    }

    #[test]
    fn paper_example_shift() {
        // m = 50,000 transactions: the paper's §III-A arithmetic gives
        // s = 9 (2^s = 512 ≥ (m+1)/128 ≈ 391).
        let p = BatmapParams::new(50_000, 7);
        assert_eq!(p.shift(), 9);
        assert_eq!(p.r0(), 512);
    }

    #[test]
    fn range_for_matches_paper_sizing() {
        let p = BatmapParams::new(50_000, 7);
        // Average set of 2500 elements: r = 2·2^⌈log₂ 2500⌉ = 8192, and
        // the batmap is 3·8192 = 24576 bytes = 3·2^13 (§IV-A throughput
        // computation).
        assert_eq!(p.range_for(2500), 8192);
        assert_eq!(p.range_for(0), p.r0());
        assert_eq!(p.range_for(1), p.r0().max(2));
    }

    #[test]
    fn range_floor_kicks_in_for_sparse_sets() {
        // m large, sets tiny: the compression floor forces r = r0 > 2|S|.
        let p = BatmapParams::new(1 << 22, 3);
        assert!(p.r0() > 2 * 64);
        assert_eq!(p.range_for(64), p.r0());
    }

    #[test]
    fn slot_roundtrip() {
        let p = BatmapParams::new(50_000, 11);
        for r in [p.r0(), 2 * p.r0(), 8 * p.r0()] {
            for t in 0..TABLES {
                for x in (0..50_000u64).step_by(997) {
                    let pi = p.perms().apply(t, x);
                    let slot = p.slot_of(t, pi, r);
                    assert!(slot < (TABLES as u64 * r) as usize);
                    assert_eq!(p.table_of_slot(slot), t);
                    let key = p.key_of(pi);
                    assert_eq!(p.decode_slot(slot, key, r), Some(pi));
                }
            }
        }
    }

    #[test]
    fn decode_rejects_null_and_inconsistent() {
        let p = BatmapParams::new(50_000, 11);
        let r = 4 * p.r0();
        assert_eq!(p.decode_slot(0, NULL_KEY, r), None);
        // An overlap-inconsistent key at slot 0 (in_range = 0) must not
        // decode: key bits [0, log r - s) must be zero for slot 0.
        let bad_key = 1u8; // overlap bit 0 set, but in_range says 0
        if p.r0() < r {
            assert_eq!(p.decode_slot(0, bad_key, r), None);
        }
    }

    #[test]
    fn folding_congruence() {
        // h⁽ⁱ⁾(x) relates to h⁽ʲ⁾(x) by block wrap-around: the slot in
        // the smaller batmap equals the slot in the larger batmap taken
        // modulo the smaller batmap's byte width.
        let p = BatmapParams::new(100_000, 13);
        let ri = 2 * p.r0();
        let rj = 8 * p.r0();
        let wi = (TABLES as u64 * ri) as usize;
        for t in 0..TABLES {
            for x in (0..100_000u64).step_by(1009) {
                let pi = p.perms().apply(t, x);
                let si = p.slot_of(t, pi, ri);
                let sj = p.slot_of(t, pi, rj);
                assert_eq!(si, sj % wi, "t={t} x={x}");
            }
        }
    }

    #[test]
    fn fingerprint_distinguishes() {
        let a = BatmapParams::new(1000, 1);
        let b = BatmapParams::new(1000, 2);
        let c = BatmapParams::new(1001, 1);
        let a2 = BatmapParams::new(1000, 1);
        assert_eq!(a.fingerprint(), a2.fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    #[should_panic]
    fn zero_universe_panics() {
        let _ = BatmapParams::new(0, 1);
    }

    #[test]
    fn parallelism_choice_does_not_change_fingerprint() {
        let auto = BatmapParams::new(1000, 1);
        let pinned = BatmapParams::new(1000, 1)
            .with_engine_options(EngineOptions::auto().threads(Parallelism::Threads(4)));
        assert_eq!(auto.fingerprint(), pinned.fingerprint());
        assert_eq!(pinned.parallelism(), Parallelism::Threads(4));
        assert_eq!(auto.parallelism(), Parallelism::Auto);
    }

    #[test]
    fn kernel_choice_does_not_change_fingerprint() {
        use crate::kernel::KernelBackend;
        let auto = BatmapParams::new(1000, 1);
        let scalar = BatmapParams::new(1000, 1)
            .with_engine_options(EngineOptions::auto().kernel(KernelBackend::Scalar));
        assert_eq!(auto.fingerprint(), scalar.fingerprint());
        assert_eq!(scalar.kernel_backend(), KernelBackend::Scalar);
        assert_eq!(scalar.kernel().name(), "scalar");
        assert_eq!(auto.kernel_backend(), KernelBackend::Auto);
    }

    #[test]
    fn repr_choice_does_not_change_fingerprint() {
        let auto = BatmapParams::new(1000, 1);
        let hybrid = BatmapParams::new(1000, 1)
            .with_engine_options(EngineOptions::auto().repr(ReprPolicy::Hybrid));
        assert_eq!(auto.fingerprint(), hybrid.fingerprint());
        assert_eq!(hybrid.repr_policy(), ReprPolicy::Hybrid);
        assert_eq!(auto.repr_policy(), ReprPolicy::Auto);
    }

    #[test]
    fn engine_options_roundtrip_and_deprecated_shims_agree() {
        let opts = EngineOptions::auto()
            .kernel(crate::kernel::KernelBackend::SwarU32)
            .threads(Parallelism::Threads(3))
            .repr(ReprPolicy::Tidlist);
        let via_options = BatmapParams::new(1000, 1).with_engine_options(opts);
        assert_eq!(via_options.engine_options(), opts);
        // The deprecated per-field setters remain thin shims over the
        // same fields, so migrating code changes nothing observable.
        #[allow(deprecated)]
        let via_shims = BatmapParams::new(1000, 1)
            .with_kernel(crate::kernel::KernelBackend::SwarU32)
            .with_threads(Parallelism::Threads(3))
            .with_repr(ReprPolicy::Tidlist);
        assert_eq!(via_shims.engine_options(), opts);
    }
}
