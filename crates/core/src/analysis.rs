//! Empirical validation of the §II-B insertion analysis.
//!
//! The paper proves, for range `r ≥ (2+ε)n`:
//!
//! * expected insertion transcript length is `O(1/ε)`;
//! * the probability that an insertion *fails* is `O((ε³ n r)⁻¹)`.
//!
//! This module runs the construction at a configurable slack
//! `ε = r/n − 2` and reports the observed transcript statistics and
//! failure rates, so the `ablation_maxloop` bench and the analysis unit
//! tests can check the empirical curves against the theory's shape.

use crate::builder::BatmapBuilder;
use crate::params::BatmapParams;
use std::sync::Arc;

/// One experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisConfig {
    /// Universe size.
    pub m: u64,
    /// Elements per set.
    pub set_size: usize,
    /// Number of independent sets (fresh hash seeds) to build.
    pub trials: u32,
    /// MaxLoop bound used for the builds.
    pub max_loop: u32,
}

/// Aggregate results over all trials.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// Configuration echoed back.
    pub set_size: usize,
    /// Range used (identical across trials: it depends only on size).
    pub range: u64,
    /// Effective slack ε = r/n − 2 (clamped at 0 for reporting).
    pub epsilon: f64,
    /// Mean element moves per inserted element (2 copies ⇒ ≥ 2).
    pub mean_moves_per_element: f64,
    /// Longest transcript seen anywhere.
    pub max_transcript: u64,
    /// Total failed insertions across trials.
    pub failures: u64,
    /// Total elements attempted across trials.
    pub attempts: u64,
}

impl AnalysisReport {
    /// Observed failure probability per element.
    pub fn failure_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.failures as f64 / self.attempts as f64
        }
    }
}

/// Run the insertion experiment: build `trials` random sets of
/// `set_size` elements from `{0..m-1}` (distinct per trial via the seed)
/// and aggregate the builder statistics.
pub fn run(config: AnalysisConfig) -> AnalysisReport {
    assert!(config.set_size as u64 <= config.m);
    let mut moves = 0u64;
    let mut max_transcript = 0u64;
    let mut failures = 0u64;
    let mut attempts = 0u64;
    let mut range = 0u64;
    let mut epsilon = 0.0;
    for trial in 0..config.trials {
        let params = Arc::new(BatmapParams::with_max_loop(
            config.m,
            0xA11A_0000 + trial as u64,
            config.max_loop,
        ));
        // Equally spaced, offset elements: deterministic per trial but
        // the permutations are re-seeded, which is what randomizes slots.
        let stride = (config.m / config.set_size.max(1) as u64).max(1);
        let elements: Vec<u32> = (0..config.set_size as u64)
            .map(|i| ((i * stride + trial as u64) % config.m) as u32)
            .collect();
        let mut builder = BatmapBuilder::with_capacity(params.clone(), config.set_size);
        range = builder.range();
        epsilon = (range as f64 / config.set_size.max(1) as f64 - 2.0).max(0.0);
        for &x in &elements {
            builder.insert(x);
        }
        let out = builder.finish();
        moves += out.stats.moves;
        max_transcript = max_transcript.max(out.stats.max_transcript);
        failures += out.stats.failures;
        attempts += out.stats.elements;
    }
    AnalysisReport {
        set_size: config.set_size,
        range,
        epsilon,
        mean_moves_per_element: if attempts == 0 {
            0.0
        } else {
            moves as f64 / attempts as f64
        },
        max_transcript,
        failures,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_failures_at_paper_load() {
        let report = run(AnalysisConfig {
            m: 1 << 16,
            set_size: 3000,
            trials: 8,
            max_loop: 128,
        });
        assert_eq!(report.failures, 0, "{report:?}");
        // Two copies, each at least one move.
        assert!(report.mean_moves_per_element >= 2.0);
        // O(1/ε) with ε ≥ ~0.7 here: generous ceiling.
        assert!(
            report.mean_moves_per_element < 12.0,
            "transcripts too long: {report:?}"
        );
    }

    #[test]
    fn smaller_max_loop_cannot_reduce_moves_below_two() {
        let report = run(AnalysisConfig {
            m: 1 << 14,
            set_size: 500,
            trials: 4,
            max_loop: 2,
        });
        assert!(report.mean_moves_per_element >= 2.0);
    }

    #[test]
    fn failure_rate_declines_with_max_loop() {
        // With MaxLoop=1 at a load near the bound, failures appear; with
        // a healthy MaxLoop they vanish. (Shape check of §II-B.)
        let tight = run(AnalysisConfig {
            m: 1 << 15,
            set_size: 5000,
            trials: 4,
            max_loop: 1,
        });
        let loose = run(AnalysisConfig {
            m: 1 << 15,
            set_size: 5000,
            trials: 4,
            max_loop: 64,
        });
        assert!(loose.failure_rate() <= tight.failure_rate());
        assert_eq!(loose.failures, 0, "{loose:?}");
    }

    #[test]
    fn report_echoes_config() {
        let report = run(AnalysisConfig {
            m: 1 << 12,
            set_size: 100,
            trials: 1,
            max_loop: 16,
        });
        assert_eq!(report.set_size, 100);
        assert_eq!(report.attempts, 100);
        assert!(report.range >= 256);
    }
}
