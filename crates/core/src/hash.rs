//! The shared permutation family `π₁, π₂, π₃`.
//!
//! Section III-A of the paper defines the hash functions in terms of three
//! permutations `πₜ : {1..m} → {1..m}`. Using *permutations* (rather than
//! ordinary hash functions) is what makes the compressed layout exact:
//! distinct elements can never agree on the full value `πₜ(x)`, so a slot
//! position plus the stored high bits uniquely identify the element.
//!
//! We realize each `πₜ` as a 4-round balanced Feistel network over the
//! power-of-two domain `2^(2·half_bits) ≥ m`, restricted to `{0..m-1}` by
//! cycle walking. This is a standard format-preserving-permutation
//! construction: deterministic given a seed, O(1) evaluation, cheaply
//! invertible (needed to enumerate a batmap's elements from its slots).

use serde::{Deserialize, Serialize};

/// Number of Feistel rounds. Four rounds of a decent round function are
/// the textbook minimum for pseudorandom behaviour; our round keys come
/// from splitmix64 so collisions behave like those of a random permutation
/// for the purposes of the §II-B insertion analysis.
const ROUNDS: usize = 4;

/// splitmix64: the canonical seed-expansion mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded permutation of `{0 .. m-1}`.
///
/// ```
/// use batmap::hash::Permutation;
/// let p = Permutation::new(1000, 0xDEAD_BEEF);
/// let mut seen = vec![false; 1000];
/// for x in 0..1000 {
///     let y = p.apply(x);
///     assert!(y < 1000 && !seen[y as usize]);
///     seen[y as usize] = true;
///     assert_eq!(p.invert(y), x);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Permutation {
    /// Domain size; `apply` maps `{0..m-1}` onto itself.
    m: u64,
    /// Bits in each Feistel half.
    half_bits: u32,
    /// Per-round keys.
    keys: [u64; ROUNDS],
}

impl Permutation {
    /// Create the permutation of `{0..m-1}` determined by `seed`.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: u64, seed: u64) -> Self {
        assert!(m > 0, "permutation domain must be non-empty");
        // Smallest balanced Feistel domain 2^(2*half_bits) >= m.
        let bits = 64 - (m - 1).max(1).leading_zeros();
        let half_bits = bits.div_ceil(2).max(1);
        let mut state = seed;
        let mut keys = [0u64; ROUNDS];
        for k in &mut keys {
            *k = splitmix64(&mut state);
        }
        Permutation { m, half_bits, keys }
    }

    #[inline]
    fn half_mask(&self) -> u64 {
        (1u64 << self.half_bits) - 1
    }

    /// Feistel round function: mix `r` with the round key, keep
    /// `half_bits` bits.
    #[inline]
    fn round(&self, r: u64, key: u64) -> u64 {
        let mut z = r ^ key;
        z = z.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        z ^= z >> 33;
        z = z.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        z ^= z >> 29;
        z & self.half_mask()
    }

    /// One pass of the Feistel network over the full power-of-two domain.
    #[inline]
    fn feistel(&self, x: u64) -> u64 {
        let mut l = x >> self.half_bits;
        let mut r = x & self.half_mask();
        for &key in &self.keys {
            let (nl, nr) = (r, l ^ self.round(r, key));
            l = nl;
            r = nr;
        }
        (l << self.half_bits) | r
    }

    /// Inverse of [`Self::feistel`].
    #[inline]
    fn feistel_inv(&self, y: u64) -> u64 {
        let mut l = y >> self.half_bits;
        let mut r = y & self.half_mask();
        for &key in self.keys.iter().rev() {
            let (nl, nr) = (r ^ self.round(l, key), l);
            l = nl;
            r = nr;
        }
        (l << self.half_bits) | r
    }

    /// Apply the permutation: `π(x)` for `x < m`.
    ///
    /// Cycle walking: the Feistel network permutes the full power-of-two
    /// domain; out-of-range intermediate values are walked through again.
    /// Expected walk length is below 4 (domain ≤ 4m).
    #[inline]
    pub fn apply(&self, x: u64) -> u64 {
        debug_assert!(x < self.m, "element {x} outside domain 0..{}", self.m);
        let mut y = self.feistel(x);
        while y >= self.m {
            y = self.feistel(y);
        }
        y
    }

    /// Invert the permutation: `π⁻¹(y)` for `y < m`.
    #[inline]
    pub fn invert(&self, y: u64) -> u64 {
        debug_assert!(y < self.m, "value {y} outside domain 0..{}", self.m);
        let mut x = self.feistel_inv(y);
        while x >= self.m {
            x = self.feistel_inv(x);
        }
        x
    }

    /// Domain size `m`.
    pub fn domain(&self) -> u64 {
        self.m
    }
}

/// The three shared table permutations of a batmap universe.
///
/// All batmaps over the same universe must be built from the same
/// `PermutationTriple`; that is the property that lets two batmaps be
/// intersected positionally (§II, "all sets are stored according to the
/// same hash functions").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PermutationTriple {
    perms: [Permutation; 3],
}

impl PermutationTriple {
    /// Build the three permutations of `{0..m-1}` from a master seed.
    pub fn new(m: u64, seed: u64) -> Self {
        let mut state = seed ^ 0xB7E1_5162_8AED_2A6A;
        let seeds = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        PermutationTriple {
            perms: [
                Permutation::new(m, seeds[0]),
                Permutation::new(m, seeds[1]),
                Permutation::new(m, seeds[2]),
            ],
        }
    }

    /// `πₜ(x)` for table `t ∈ {0,1,2}` (0-indexed).
    #[inline]
    pub fn apply(&self, t: usize, x: u64) -> u64 {
        self.perms[t].apply(x)
    }

    /// `πₜ⁻¹(y)` for table `t ∈ {0,1,2}`.
    #[inline]
    pub fn invert(&self, t: usize, y: u64) -> u64 {
        self.perms[t].invert(y)
    }

    /// The underlying permutation for table `t`.
    pub fn table(&self, t: usize) -> &Permutation {
        &self.perms[t]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_permutation_small_domains() {
        for m in [1u64, 2, 3, 5, 16, 17, 100, 1000] {
            let p = Permutation::new(m, 42);
            let mut seen = vec![false; m as usize];
            for x in 0..m {
                let y = p.apply(x);
                assert!(y < m, "m={m} x={x} -> {y} out of range");
                assert!(!seen[y as usize], "m={m}: duplicate image {y}");
                seen[y as usize] = true;
            }
        }
    }

    #[test]
    fn invert_roundtrip() {
        for m in [1u64, 7, 64, 1_000, 123_457] {
            let p = Permutation::new(m, 7);
            for x in (0..m).step_by((m as usize / 97).max(1)) {
                assert_eq!(p.invert(p.apply(x)), x);
                assert_eq!(p.apply(p.invert(x)), x);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let m = 10_000;
        let a = Permutation::new(m, 1);
        let b = Permutation::new(m, 2);
        let same = (0..m).filter(|&x| a.apply(x) == b.apply(x)).count();
        // A random pair of permutations agrees on ~1 point in expectation.
        assert!(same < 20, "permutations nearly identical: {same} fixed");
    }

    #[test]
    fn triple_tables_are_distinct() {
        let t = PermutationTriple::new(50_000, 99);
        let x = 12_345;
        let imgs = [t.apply(0, x), t.apply(1, x), t.apply(2, x)];
        assert!(imgs[0] != imgs[1] || imgs[1] != imgs[2]);
        for tab in 0..3 {
            assert_eq!(t.invert(tab, t.apply(tab, x)), x);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a = PermutationTriple::new(1_000, 5);
        let b = PermutationTriple::new(1_000, 5);
        for x in 0..1_000 {
            for t in 0..3 {
                assert_eq!(a.apply(t, x), b.apply(t, x));
            }
        }
    }

    #[test]
    fn images_look_uniform() {
        // Chi-squared-ish sanity: bucket images of 0..m into 16 buckets,
        // each bucket should be within 3x of the mean.
        let m = 16_384u64;
        let p = Permutation::new(m, 1234);
        let mut buckets = [0usize; 16];
        for x in 0..m {
            buckets[(p.apply(x) * 16 / m) as usize] += 1;
        }
        let mean = m as usize / 16;
        for &b in &buckets {
            assert!(b > mean / 3 && b < mean * 3, "skewed bucket: {b} vs {mean}");
        }
    }
}
