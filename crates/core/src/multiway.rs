//! Multiway intersection — the paper's §V proposed extensions, built.
//!
//! The paper leaves open how to intersect more than two sets and
//! sketches two directions; this module implements both:
//!
//! 1. **The d-of-(d+1) generalization** ([`MultiwayBatmap`]): store
//!    each element in `d` of `d+1` tables. Any `k ≤ d` sets containing
//!    `x` miss at most `k ≤ d` distinct tables, so at least one table
//!    holds `x` in *all* of them — a data-independent positional sweep
//!    again suffices. The paper's 1-bit cyclic indicator does not
//!    generalize; instead each slot stores the index of its element's
//!    **omitted table** (⌈log₂(d+1)⌉ bits), and a position is counted
//!    iff its table is the *smallest* table omitted by none of the
//!    operands — computable locally from the compared slots, so the
//!    sweep stays branch-predictable and parallel.
//!
//! 2. **Probe counting** ([`intersect_count_probe`]): the paper's
//!    second sketch — use the ordinary 2-of-3 batmaps and count, for
//!    each element of the smallest set, whether it appears in all the
//!    others (membership probes are O(1) and exact).
//!
//! The multiway structure here stores full permuted values (no 8-bit
//! compression): it is the correctness-first reference of the
//! extension, benchmarked in `benches/` but not routed to the GPU
//! kernel. DESIGN.md lists compressing it as future work.

use crate::batmap::AsSlots;
use crate::hash::Permutation;
use crate::kernel::{KernelBackend, KernelDispatch, MatchKernel};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Sentinel for an empty slot.
const EMPTY: u64 = u64::MAX;
/// Occupant sentinel during construction.
const VACANT: u32 = u32::MAX;

/// Shared parameters of a d-of-(d+1) universe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiwayParams {
    /// Universe size; elements are `0..m`.
    m: u64,
    /// Copies per element (`d`); there are `d+1` tables.
    d: usize,
    /// Cuckoo move bound.
    max_loop: u32,
    /// Defining seed (fingerprint component).
    seed: u64,
    /// Match-count backend for the positional sweep (not part of the
    /// fingerprint; it changes how counts are computed, not what).
    /// Defaults on absence so older serialized parameters stay
    /// readable.
    #[serde(default)]
    kernel: KernelBackend,
    /// The `d+1` shared permutations.
    perms: Vec<Permutation>,
}

impl MultiwayParams {
    /// Create parameters for universe `{0..m-1}` with `d` copies per
    /// element (supporting intersections of up to `d` sets).
    ///
    /// # Panics
    /// Panics if `m == 0` or `d < 2` or `d > 15`.
    pub fn new(m: u64, d: usize, seed: u64) -> Self {
        assert!(m > 0, "universe must be non-empty");
        assert!((2..=15).contains(&d), "d must be in 2..=15");
        let perms = (0..=d)
            .map(|t| Permutation::new(m, seed ^ (0x9E37_79B9u64.wrapping_mul(t as u64 + 1))))
            .collect();
        MultiwayParams {
            m,
            d,
            max_loop: 128,
            seed,
            kernel: KernelBackend::Auto,
            perms,
        }
    }

    /// Override the cuckoo `MaxLoop` bound (exposed for failure-path
    /// tests; the default of 128 never fails at the sized load).
    pub fn with_max_loop(mut self, max_loop: u32) -> Self {
        assert!(max_loop > 0);
        self.max_loop = max_loop;
        self
    }

    /// Pin the match-count backend used by the positional sweep.
    pub fn with_kernel(mut self, kernel: KernelBackend) -> Self {
        self.kernel = kernel;
        self
    }

    /// The kernel implementation the sweep dispatches to.
    #[inline]
    pub fn kernel(&self) -> &'static dyn MatchKernel {
        self.kernel.kernel()
    }

    /// Universe size.
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Copies per element.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Number of tables (`d + 1`).
    pub fn tables(&self) -> usize {
        self.d + 1
    }

    /// Per-table range for a set of `size` elements, sized so the total
    /// load `d·n / ((d+1)·r)` stays at or below the 1/3 the paper's
    /// d = 2 sizing achieves (`r = 2n` gives `2n/(3·2n) = 1/3`):
    /// `r = 2^⌈log₂(3·d·n/(d+1))⌉`.
    pub fn range_for(&self, size: usize) -> u64 {
        let target = (3 * self.d as u64 * size.max(1) as u64).div_ceil(self.d as u64 + 1);
        target.next_power_of_two()
    }

    /// Interoperability fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [self.m, self.d as u64, self.seed] {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// A set stored in `d` of `d+1` shared-permutation tables.
#[derive(Debug, Clone)]
pub struct MultiwayBatmap {
    params: Arc<MultiwayParams>,
    /// Per-table range (power of two).
    r: u64,
    /// Permuted value per slot (table-major: `t·r + (πₜ(x) mod r)`);
    /// [`EMPTY`] when vacant.
    values: Box<[u64]>,
    /// Omitted-table index of the slot's element (meaningless when
    /// vacant).
    omitted: Box<[u8]>,
    len: usize,
}

impl MultiwayBatmap {
    /// Build from elements (duplicates ignored). Returns `None` if any
    /// insertion fails — for `d ≥ 4` the cyclic cuckoo insert does fail
    /// at the default sizing now and then, so counting paths need a
    /// fallback (or [`MultiwayBatmap::build_with_growth`]); a production
    /// path would add the §III-C side sets exactly as the pairwise
    /// pipeline does.
    pub fn build(params: Arc<MultiwayParams>, elements: &[u32]) -> Option<Self> {
        Self::build_with_growth(params, elements, 0)
    }

    /// [`MultiwayBatmap::build`] with failure recovery by range growth:
    /// on an insertion failure the per-table range is doubled and the
    /// build retried, up to `max_doublings` times. Ranges are per-set
    /// (the sweep folds by each operand's own power-of-two range), so a
    /// grown map intersects unchanged with normally-sized ones; the
    /// cost is space. One doubling absorbs almost every failure the
    /// default sizing produces; `None` after the last retry is the
    /// caller's exact-fallback signal.
    pub fn build_with_growth(
        params: Arc<MultiwayParams>,
        elements: &[u32],
        max_doublings: u32,
    ) -> Option<Self> {
        let mut sorted = elements.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if let Some(&max) = sorted.last() {
            assert!((max as u64) < params.m, "element {max} outside universe");
        }
        let mut r = params.range_for(sorted.len());
        for _ in 0..=max_doublings {
            if let Some(built) = Self::build_at_range(params.clone(), &sorted, r) {
                return Some(built);
            }
            r *= 2;
        }
        None
    }

    /// One build attempt at a fixed per-table range (power of two).
    fn build_at_range(params: Arc<MultiwayParams>, sorted: &[u32], r: u64) -> Option<Self> {
        let tables = params.tables();
        let mut occupants = vec![VACANT; tables * r as usize];
        let slot_of = |t: usize, x: u32| -> usize {
            t * r as usize + (params.perms[t].apply(x as u64) % r) as usize
        };
        // The generalized INSERT: push through tables cyclically.
        let insert_copy = |occ: &mut Vec<u32>, mut tau: u32| -> Result<(), u32> {
            for _ in 0..params.max_loop {
                for t in 0..tables {
                    let s = slot_of(t, tau);
                    std::mem::swap(&mut tau, &mut occ[s]);
                    if tau == VACANT {
                        return Ok(());
                    }
                }
            }
            Err(tau)
        };
        for &x in sorted {
            for _copy in 0..params.d {
                if insert_copy(&mut occupants, x).is_err() {
                    return None;
                }
            }
        }
        // Materialize values + omitted-table indices.
        let mut values = vec![EMPTY; occupants.len()].into_boxed_slice();
        let mut omitted = vec![0u8; occupants.len()].into_boxed_slice();
        for &x in sorted {
            let mut missing = usize::MAX;
            let mut present = 0usize;
            for t in 0..tables {
                if occupants[slot_of(t, x)] == x {
                    present += 1;
                } else {
                    debug_assert_eq!(missing, usize::MAX, "element {x} omitted twice");
                    missing = t;
                }
            }
            assert_eq!(present, params.d, "element {x} has {present} copies");
            for t in 0..tables {
                let s = slot_of(t, x);
                if occupants[s] == x {
                    values[s] = params.perms[t].apply(x as u64);
                    omitted[s] = missing as u8;
                }
            }
        }
        Some(MultiwayBatmap {
            params,
            r,
            values,
            omitted,
            len: sorted.len(),
        })
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Per-table range.
    pub fn range(&self) -> u64 {
        self.r
    }

    /// Membership test (any of the `d+1` candidate slots holds `x`).
    pub fn contains(&self, x: u32) -> bool {
        (0..self.params.tables()).any(|t| {
            let pi = self.params.perms[t].apply(x as u64);
            self.values[t * self.r as usize + (pi % self.r) as usize] == pi
        })
    }

    /// `|⋂ maps|` by the generalized positional sweep.
    ///
    /// # Panics
    /// Panics if fewer than 2 or more than `d` operands are given, or
    /// if operands come from different universes.
    pub fn intersect_count(maps: &[&MultiwayBatmap]) -> u64 {
        assert!(maps.len() >= 2, "need at least two sets");
        let params = &maps[0].params;
        assert!(
            maps.len() <= params.d,
            "d-of-(d+1) supports at most d = {} operands, got {}",
            params.d,
            maps.len()
        );
        assert!(
            maps.iter()
                .all(|m| m.params.fingerprint() == params.fingerprint()),
            "operands from different universes"
        );
        // Monomorphize over the configured backend so the per-slot
        // `value_eq` inlines: the sweep is a hot loop and must not pay
        // a virtual call per position.
        struct Sweep<'a, 'b>(&'a [&'b MultiwayBatmap]);
        impl KernelDispatch for Sweep<'_, '_> {
            type Output = u64;
            fn run<K: MatchKernel>(self, kernel: K) -> u64 {
                MultiwayBatmap::sweep(&kernel, self.0)
            }
        }
        params.kernel.dispatch(Sweep(maps))
    }

    /// Batched one-vs-many `d`-way counting:
    /// `out[i] = |⋂ base ∪ {many[i]}|`, mirroring the pairwise
    /// [`crate::intersect::count_one_vs_many`] driver.
    ///
    /// The backend is dispatched **once for the whole batch**, and the
    /// shared `base` operands are pre-folded into a per-position
    /// profile (matched value + omitted-table mask), so each candidate
    /// costs one pass over its own slots instead of re-sweeping every
    /// base operand. This is the bulk primitive the levelwise miner's
    /// Apriori counting uses: candidates generated by a prefix join
    /// share their `k−1` leading items, which become `base`.
    ///
    /// # Panics
    /// Panics if `base` is empty, if `base.len() + 1` exceeds `d`, or
    /// if any operand comes from a different universe.
    pub fn intersect_count_many(base: &[&MultiwayBatmap], many: &[&MultiwayBatmap]) -> Vec<u64> {
        let mut out = vec![0u64; many.len()];
        Self::intersect_count_many_into(base, many, &mut out);
        out
    }

    /// [`MultiwayBatmap::intersect_count_many`] writing into a
    /// caller-provided slice (hot loops reuse their buffers).
    ///
    /// # Panics
    /// Panics on the same conditions as
    /// [`MultiwayBatmap::intersect_count_many`], or if
    /// `out.len() != many.len()`.
    pub fn intersect_count_many_into(
        base: &[&MultiwayBatmap],
        many: &[&MultiwayBatmap],
        out: &mut [u64],
    ) {
        assert!(!base.is_empty(), "need at least one base operand");
        assert_eq!(out.len(), many.len(), "one output slot per candidate");
        let params = &base[0].params;
        assert!(
            base.len() < params.d,
            "d-of-(d+1) supports at most d = {} operands, got {} base + 1",
            params.d,
            base.len()
        );
        let fp = params.fingerprint();
        assert!(
            base.iter()
                .chain(many.iter())
                .all(|m| m.params.fingerprint() == fp),
            "operands from different universes"
        );
        if many.is_empty() {
            return;
        }
        struct SweepMany<'a, 'b> {
            base: &'a [&'b MultiwayBatmap],
            many: &'a [&'b MultiwayBatmap],
            out: &'a mut [u64],
        }
        impl KernelDispatch for SweepMany<'_, '_> {
            type Output = ();
            fn run<K: MatchKernel>(self, kernel: K) {
                MultiwayBatmap::sweep_many(&kernel, self.base, self.many, self.out);
            }
        }
        params.kernel.dispatch(SweepMany { base, many, out });
    }

    /// The batched sweep body: fold `base` once into a per-position
    /// profile, then run one candidate pass per element of `many`.
    fn sweep_many<K: MatchKernel>(
        kernel: &K,
        base: &[&MultiwayBatmap],
        many: &[&MultiwayBatmap],
        out: &mut [u64],
    ) {
        let params = &base[0].params;
        let tables = params.tables();
        let base_r = base.iter().map(|m| m.r).max().expect("non-empty base");
        // Profile of the base intersection at every (table, folded
        // position): the matched permuted value (EMPTY where the base
        // operands disagree or are vacant) and the OR of their
        // omitted-table bits. Folding is power-of-two masking, so a
        // candidate with a larger range reads the profile through
        // `p & (base_r - 1)` and sees exactly what a full sweep would.
        let mut profile_val = vec![EMPTY; tables * base_r as usize];
        let mut profile_mask = vec![0u32; tables * base_r as usize];
        for t in 0..tables {
            for p in 0..base_r {
                let v0 = base[0].values[base[0].slot(t, p)];
                if v0 == EMPTY {
                    continue;
                }
                if !base[1..]
                    .iter()
                    .all(|m| kernel.value_eq(m.values[m.slot(t, p)], v0))
                {
                    continue;
                }
                let idx = t * base_r as usize + p as usize;
                profile_val[idx] = v0;
                let mut mask = 0u32;
                for m in base {
                    mask |= 1 << m.omitted[m.slot(t, p)];
                }
                profile_mask[idx] = mask;
            }
        }
        for (cand, slot) in many.iter().zip(out.iter_mut()) {
            let r_max = base_r.max(cand.r);
            let mut count = 0u64;
            for t in 0..tables {
                for p in 0..r_max {
                    let idx = t * base_r as usize + (p & (base_r - 1)) as usize;
                    let v0 = profile_val[idx];
                    if v0 == EMPTY {
                        continue;
                    }
                    let cs = cand.slot(t, p);
                    if !kernel.value_eq(cand.values[cs], v0) {
                        continue;
                    }
                    let mask = profile_mask[idx] | (1 << cand.omitted[cs]);
                    if (!mask).trailing_zeros() as usize == t {
                        count += 1;
                    }
                }
            }
            *slot = count;
        }
    }

    /// The generalized positional sweep, monomorphized per backend.
    fn sweep<K: MatchKernel>(kernel: &K, maps: &[&MultiwayBatmap]) -> u64 {
        let params = &maps[0].params;
        let tables = params.tables();
        let r_max = maps.iter().map(|m| m.r).max().unwrap();
        let mut count = 0u64;
        for t in 0..tables {
            for p in 0..r_max {
                // Gather the k slots at this (folded) position.
                let first = maps[0].slot(t, p);
                let v0 = maps[0].values[first];
                if v0 == EMPTY {
                    continue;
                }
                let all_match = maps[1..]
                    .iter()
                    .all(|m| kernel.value_eq(m.values[m.slot(t, p)], v0));
                if !all_match {
                    continue;
                }
                // Count once: only at the smallest table omitted by no
                // operand (locally computable from the omitted fields).
                let mut omitted_mask = 0u32;
                for m in maps {
                    omitted_mask |= 1 << m.omitted[m.slot(t, p)];
                }
                let canonical = (!omitted_mask).trailing_zeros() as usize;
                if canonical == t {
                    count += 1;
                }
            }
        }
        count
    }

    /// Slot index of table `t`, folded position `p` (for `p` ranging
    /// over the largest operand's positions).
    #[inline]
    fn slot(&self, t: usize, p: u64) -> usize {
        t * self.r as usize + (p & (self.r - 1)) as usize
    }

    /// Bytes of the value+omitted arrays (footprint of the reference
    /// representation).
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * 8 + self.omitted.len()
    }
}

/// The paper's second §V sketch: k-way intersection with ordinary
/// pairwise batmaps, counting elements of the smallest operand that all
/// the others contain.
///
/// Exact for any `k ≥ 1`, at the cost of decoding the smallest set and
/// `k−1` membership probes per element (irregular access — the
/// trade-off the d-of-(d+1) structure avoids). Generic over the storage
/// seam ([`AsSlots`]): the operand list may hold owned
/// [`crate::Batmap`]s or arena-backed [`crate::arena::BatmapRef`]
/// views — one storage type per call (the list is homogeneous in `T`).
pub fn intersect_count_probe<T: AsSlots>(sets: &[&T]) -> u64 {
    assert!(!sets.is_empty());
    let smallest = sets
        .iter()
        .min_by_key(|s| s.len())
        .expect("non-empty operand list");
    smallest
        .elements()
        .into_iter()
        .filter(|&x| {
            sets.iter()
                .all(|s| std::ptr::eq(*s, *smallest) || s.contains(x))
        })
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BatmapParams;
    use crate::Batmap;
    use std::collections::BTreeSet;

    fn multi_params(m: u64, d: usize) -> Arc<MultiwayParams> {
        Arc::new(MultiwayParams::new(m, d, 0xD0F))
    }

    fn exact_k_way(sets: &[&[u32]]) -> u64 {
        let mut iter = sets.iter();
        let mut acc: BTreeSet<u32> = iter.next().unwrap().iter().copied().collect();
        for s in iter {
            let next: BTreeSet<u32> = s.iter().copied().collect();
            acc = acc.intersection(&next).copied().collect();
        }
        acc.len() as u64
    }

    #[test]
    fn three_way_exact() {
        let p = multi_params(10_000, 3);
        let a: Vec<u32> = (0..900).map(|i| i * 3 % 10_000).collect();
        let b: Vec<u32> = (0..700).map(|i| i * 5 % 10_000).collect();
        let c: Vec<u32> = (0..800).map(|i| i * 7 % 10_000).collect();
        let ma = MultiwayBatmap::build(p.clone(), &a).unwrap();
        let mb = MultiwayBatmap::build(p.clone(), &b).unwrap();
        let mc = MultiwayBatmap::build(p, &c).unwrap();
        assert_eq!(
            MultiwayBatmap::intersect_count(&[&ma, &mb, &mc]),
            exact_k_way(&[&a, &b, &c])
        );
        // Pairwise also works within the same structure.
        assert_eq!(
            MultiwayBatmap::intersect_count(&[&ma, &mb]),
            exact_k_way(&[&a, &b])
        );
    }

    #[test]
    fn four_way_exact_with_mixed_sizes() {
        let p = multi_params(20_000, 4);
        let sets: Vec<Vec<u32>> = vec![
            (0..2000).map(|i| i * 2 % 20_000).collect(),
            (0..500).map(|i| i * 6 % 20_000).collect(),
            (0..1200).map(|i| i * 4 % 20_000).collect(),
            (0..300).map(|i| i * 12 % 20_000).collect(),
        ];
        let maps: Vec<MultiwayBatmap> = sets
            .iter()
            .map(|s| MultiwayBatmap::build(p.clone(), s).unwrap())
            .collect();
        let refs: Vec<&MultiwayBatmap> = maps.iter().collect();
        let slices: Vec<&[u32]> = sets.iter().map(Vec::as_slice).collect();
        assert_eq!(MultiwayBatmap::intersect_count(&refs), exact_k_way(&slices));
        // Different widths were actually exercised.
        let widths: BTreeSet<u64> = maps.iter().map(MultiwayBatmap::range).collect();
        assert!(widths.len() > 1);
    }

    #[test]
    fn self_intersection_counts_once() {
        let p = multi_params(5_000, 3);
        let a: Vec<u32> = (0..400).collect();
        let ma = MultiwayBatmap::build(p, &a).unwrap();
        assert_eq!(MultiwayBatmap::intersect_count(&[&ma, &ma, &ma]), 400);
    }

    #[test]
    fn membership() {
        let p = multi_params(5_000, 3);
        let a: Vec<u32> = (0..300).map(|i| i * 11 % 5_000).collect();
        let ma = MultiwayBatmap::build(p, &a).unwrap();
        let set: BTreeSet<u32> = a.iter().copied().collect();
        for x in 0..5_000 {
            assert_eq!(ma.contains(x), set.contains(&x), "x={x}");
        }
        assert_eq!(ma.len(), set.len());
    }

    #[test]
    fn disjoint_and_empty() {
        let p = multi_params(1_000, 3);
        let a = MultiwayBatmap::build(p.clone(), &(0..100).collect::<Vec<_>>()).unwrap();
        let b = MultiwayBatmap::build(p.clone(), &(500..600).collect::<Vec<_>>()).unwrap();
        let e = MultiwayBatmap::build(p, &[]).unwrap();
        assert_eq!(MultiwayBatmap::intersect_count(&[&a, &b]), 0);
        assert_eq!(MultiwayBatmap::intersect_count(&[&a, &e]), 0);
        assert_eq!(MultiwayBatmap::intersect_count(&[&e, &e]), 0);
    }

    #[test]
    #[should_panic]
    fn too_many_operands_rejected() {
        let p = multi_params(1_000, 2);
        let a = MultiwayBatmap::build(p.clone(), &[1, 2]).unwrap();
        let b = MultiwayBatmap::build(p.clone(), &[2, 3]).unwrap();
        let c = MultiwayBatmap::build(p, &[3, 4]).unwrap();
        let _ = MultiwayBatmap::intersect_count(&[&a, &b, &c]);
    }

    #[test]
    #[should_panic]
    fn universe_mismatch_rejected() {
        let a = MultiwayBatmap::build(multi_params(1_000, 3), &[1]).unwrap();
        let b = MultiwayBatmap::build(Arc::new(MultiwayParams::new(1_000, 3, 1)), &[1]).unwrap();
        let _ = MultiwayBatmap::intersect_count(&[&a, &b]);
    }

    #[test]
    fn probe_counting_matches_exact() {
        let params = Arc::new(BatmapParams::new(8_000, 0xAB));
        let sets: Vec<Vec<u32>> = vec![
            (0..1500).map(|i| i * 2 % 8_000).collect(),
            (0..600).map(|i| i * 5 % 8_000).collect(),
            (0..900).map(|i| i * 3 % 8_000).collect(),
            (0..200).map(|i| i * 30 % 8_000).collect(),
        ];
        let maps: Vec<Batmap> = sets
            .iter()
            .map(|s| Batmap::build(params.clone(), s).batmap)
            .collect();
        for k in 2..=4 {
            let refs: Vec<&Batmap> = maps[..k].iter().collect();
            let slices: Vec<&[u32]> = sets[..k].iter().map(Vec::as_slice).collect();
            assert_eq!(intersect_count_probe(&refs), exact_k_way(&slices), "k={k}");
        }
    }

    #[test]
    fn sweep_agrees_across_kernel_backends() {
        let a: Vec<u32> = (0..600).map(|i| i * 3 % 9_000).collect();
        let b: Vec<u32> = (0..500).map(|i| i * 5 % 9_000).collect();
        let expect = exact_k_way(&[&a, &b]);
        for backend in crate::kernel::available_backends() {
            let p = Arc::new(MultiwayParams::new(9_000, 3, 0xD0F).with_kernel(backend));
            let ma = MultiwayBatmap::build(p.clone(), &a).unwrap();
            let mb = MultiwayBatmap::build(p, &b).unwrap();
            assert_eq!(
                MultiwayBatmap::intersect_count(&[&ma, &mb]),
                expect,
                "backend {backend}"
            );
        }
    }

    #[test]
    fn batched_many_matches_pointwise() {
        let p = multi_params(30_000, 4);
        // Sizes chosen to keep the per-table cuckoo load comfortably
        // below the sizing bound (sizes just under a power-of-two
        // boundary can legitimately fail to build at d = 4 — that is
        // the miner's fallback path, not this test's subject).
        let base_sets: Vec<Vec<u32>> = vec![
            (0..2000).map(|i| i * 2 % 30_000).collect(),
            (0..1200).map(|i| i * 3 % 30_000).collect(),
        ];
        let cand_sets: Vec<Vec<u32>> = [80usize, 300, 500, 1000, 2200]
            .iter()
            .enumerate()
            .map(|(k, &n)| (0..n as u32).map(|i| i * (k as u32 + 2) % 30_000).collect())
            .collect();
        let base_maps: Vec<MultiwayBatmap> = base_sets
            .iter()
            .map(|s| MultiwayBatmap::build_with_growth(p.clone(), s, 2).expect("base builds"))
            .collect();
        let cand_maps: Vec<MultiwayBatmap> = cand_sets
            .iter()
            .map(|s| MultiwayBatmap::build_with_growth(p.clone(), s, 2).expect("candidate builds"))
            .collect();
        let base: Vec<&MultiwayBatmap> = base_maps.iter().collect();
        let many: Vec<&MultiwayBatmap> = cand_maps.iter().collect();
        // Candidate ranges both above and below the base range.
        let widths: BTreeSet<u64> = cand_maps.iter().map(MultiwayBatmap::range).collect();
        assert!(widths.len() > 1, "fixture must exercise mixed ranges");
        let got = MultiwayBatmap::intersect_count_many(&base, &many);
        for (i, cand) in many.iter().enumerate() {
            let mut ops = base.clone();
            ops.push(cand);
            assert_eq!(got[i], MultiwayBatmap::intersect_count(&ops), "cand {i}");
        }
        // Single-operand base (pair counting in batch form).
        let got2 = MultiwayBatmap::intersect_count_many(&base[..1], &many);
        for (i, cand) in many.iter().enumerate() {
            assert_eq!(
                got2[i],
                MultiwayBatmap::intersect_count(&[base[0], cand]),
                "cand {i}"
            );
        }
        // Empty candidate list is a no-op.
        assert!(MultiwayBatmap::intersect_count_many(&base, &[]).is_empty());
    }

    #[test]
    fn batched_many_agrees_across_backends() {
        let a: Vec<u32> = (0..800).map(|i| i * 3 % 12_000).collect();
        let b: Vec<u32> = (0..700).map(|i| i * 5 % 12_000).collect();
        let c: Vec<u32> = (0..600).map(|i| i * 7 % 12_000).collect();
        let expect = exact_k_way(&[&a, &b, &c]);
        for backend in crate::kernel::available_backends() {
            let p = Arc::new(MultiwayParams::new(12_000, 3, 0xD0F).with_kernel(backend));
            let ma = MultiwayBatmap::build(p.clone(), &a).unwrap();
            let mb = MultiwayBatmap::build(p.clone(), &b).unwrap();
            let mc = MultiwayBatmap::build(p, &c).unwrap();
            assert_eq!(
                MultiwayBatmap::intersect_count_many(&[&ma, &mb], &[&mc]),
                vec![expect],
                "backend {backend}"
            );
        }
    }

    #[test]
    fn growth_recovers_failed_builds() {
        // d = 4 with a size just under a power-of-two boundary: the
        // single-attempt build fails for some of these seeds, and one
        // or two range doublings recover every one of them — with
        // counts identical to normally-sized operands.
        let elements: Vec<u32> = (0..300u32).map(|i| i * 3 % 30_000).collect();
        let other: Vec<u32> = (0..2000u32).map(|i| i * 2 % 30_000).collect();
        let expect = exact_k_way(&[&elements, &other]);
        let mut saw_growth = false;
        for seed in 0..12u64 {
            let p = Arc::new(MultiwayParams::new(30_000, 4, seed));
            let grown = MultiwayBatmap::build_with_growth(p.clone(), &elements, 2)
                .expect("growth recovers the build");
            if MultiwayBatmap::build(p.clone(), &elements).is_none() {
                saw_growth = true;
                assert!(grown.range() > p.range_for(elements.len()));
            }
            let ob = MultiwayBatmap::build_with_growth(p, &other, 2).unwrap();
            assert_eq!(MultiwayBatmap::intersect_count(&[&grown, &ob]), expect);
        }
        assert!(saw_growth, "fixture never exercised the growth path");
    }

    #[test]
    #[should_panic]
    fn batched_many_rejects_overflowing_arity() {
        let p = multi_params(1_000, 2);
        let a = MultiwayBatmap::build(p.clone(), &[1, 2]).unwrap();
        let b = MultiwayBatmap::build(p.clone(), &[2, 3]).unwrap();
        let c = MultiwayBatmap::build(p, &[3, 4]).unwrap();
        let _ = MultiwayBatmap::intersect_count_many(&[&a, &b], &[&c]);
    }

    #[test]
    fn probe_single_set_is_len() {
        let params = Arc::new(BatmapParams::new(1_000, 0xAB));
        let a = Batmap::build(params, &(0..50).collect::<Vec<_>>()).batmap;
        assert_eq!(intersect_count_probe(&[&a]), 50);
    }
}
