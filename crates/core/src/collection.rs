//! [`BatmapCollection`] — the convenience API for the common pattern:
//! many sets over one universe, intersected pairwise.
//!
//! The mining pipeline (`pairminer`) has its own width-sorted, tiled,
//! failure-recovering driver; this type is the simple library entry
//! point for applications that just want "N sets, give me counts"
//! (boolean matrix products, join-projects, similarity matrices).

use crate::builder;
use crate::params::{BatmapParams, ParamsHandle};
use crate::Batmap;
use hpcutil::MemoryFootprint;
use std::sync::Arc;

/// A family of batmaps over one shared universe.
#[derive(Debug, Clone)]
pub struct BatmapCollection {
    params: ParamsHandle,
    batmaps: Vec<Batmap>,
    /// `(set index, element)` pairs that failed insertion. Counts
    /// involving a set listed here undercount by up to its number of
    /// failed elements; [`Self::failed`] exposes them so callers can
    /// correct (as `pairminer::failed` does) or rebuild with another
    /// seed.
    failed: Vec<(u32, u32)>,
}

impl BatmapCollection {
    /// Build batmaps for `sets` over the universe `{0..m-1}`.
    pub fn build(m: u64, seed: u64, sets: &[Vec<u32>]) -> Self {
        Self::with_params(Arc::new(BatmapParams::new(m, seed)), sets)
    }

    /// Build with explicit parameters (e.g. a GPU-compatible shift).
    pub fn with_params(params: ParamsHandle, sets: &[Vec<u32>]) -> Self {
        let mut batmaps = Vec::with_capacity(sets.len());
        let mut failed = Vec::new();
        for (idx, set) in sets.iter().enumerate() {
            let out = builder::build(params.clone(), set);
            for x in out.failed {
                failed.push((idx as u32, x));
            }
            batmaps.push(out.batmap);
        }
        BatmapCollection {
            params,
            batmaps,
            failed,
        }
    }

    /// Number of sets.
    pub fn len(&self) -> usize {
        self.batmaps.len()
    }

    /// True when the collection holds no sets.
    pub fn is_empty(&self) -> bool {
        self.batmaps.is_empty()
    }

    /// The shared parameters.
    pub fn params(&self) -> &ParamsHandle {
        &self.params
    }

    /// The batmap of set `i`.
    pub fn get(&self, i: usize) -> &Batmap {
        &self.batmaps[i]
    }

    /// Elements whose insertion failed, as `(set index, element)`.
    pub fn failed(&self) -> &[(u32, u32)] {
        &self.failed
    }

    /// `|setᵢ ∩ setⱼ|`.
    pub fn intersect_count(&self, i: usize, j: usize) -> u64 {
        self.batmaps[i].intersect_count(&self.batmaps[j])
    }

    /// Counts of set `i` against every set (including itself).
    pub fn count_against_all(&self, i: usize) -> Vec<u64> {
        let probe = &self.batmaps[i];
        self.batmaps
            .iter()
            .map(|b| probe.intersect_count(b))
            .collect()
    }

    /// All pairwise counts `(i, j, |setᵢ ∩ setⱼ|)` for `i < j`,
    /// omitting empty intersections.
    pub fn all_pairs(&self) -> Vec<(u32, u32, u64)> {
        let mut out = Vec::new();
        for i in 0..self.batmaps.len() {
            for j in (i + 1)..self.batmaps.len() {
                let c = self.intersect_count(i, j);
                if c > 0 {
                    out.push((i as u32, j as u32, c));
                }
            }
        }
        out
    }
}

impl MemoryFootprint for BatmapCollection {
    fn heap_bytes(&self) -> usize {
        self.batmaps
            .iter()
            .map(MemoryFootprint::heap_bytes)
            .sum::<usize>()
            + self.failed.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn sets() -> Vec<Vec<u32>> {
        vec![
            (0..500).map(|i| i * 2).collect(),
            (0..300).map(|i| i * 3).collect(),
            (0..100).map(|i| i * 10).collect(),
            vec![],
        ]
    }

    fn exact(a: &[u32], b: &[u32]) -> u64 {
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        b.iter().filter(|x| sa.contains(x)).count() as u64
    }

    #[test]
    fn pairwise_counts_exact() {
        let s = sets();
        let c = BatmapCollection::build(10_000, 5, &s);
        assert!(c.failed().is_empty());
        for i in 0..s.len() {
            for j in 0..s.len() {
                assert_eq!(c.intersect_count(i, j), exact(&s[i], &s[j]), "({i},{j})");
            }
        }
    }

    #[test]
    fn all_pairs_matches_pointwise_and_skips_zeros() {
        let s = sets();
        let c = BatmapCollection::build(10_000, 5, &s);
        let pairs = c.all_pairs();
        for &(i, j, count) in &pairs {
            assert!(i < j);
            assert_eq!(count, exact(&s[i as usize], &s[j as usize]));
            assert!(count > 0);
        }
        // The empty set intersects nothing; pairs with it are omitted.
        assert!(pairs.iter().all(|&(i, j, _)| i != 3 && j != 3));
    }

    #[test]
    fn count_against_all_row() {
        let s = sets();
        let c = BatmapCollection::build(10_000, 5, &s);
        let row = c.count_against_all(1);
        assert_eq!(row.len(), 4);
        assert_eq!(row[1], s[1].len() as u64);
        assert_eq!(row[0], exact(&s[0], &s[1]));
    }

    #[test]
    fn footprint_sums_batmaps() {
        let c = BatmapCollection::build(10_000, 5, &sets());
        let direct: usize = (0..c.len()).map(|i| c.get(i).heap_bytes()).sum();
        assert!(c.heap_bytes() >= direct);
    }
}
