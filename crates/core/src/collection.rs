//! [`BatmapCollection`] — the convenience API for the common pattern:
//! many sets over one universe, intersected pairwise.
//!
//! The mining pipeline (`pairminer`) has its own width-sorted, tiled,
//! failure-recovering driver; this type is the simple library entry
//! point for applications that just want "N sets, give me counts"
//! (boolean matrix products, join-projects, similarity matrices).
//!
//! Storage is one contiguous [`BatmapArena`] (not a `Box<[u8]>` per
//! set), so a collection can be persisted with
//! [`BatmapCollection::arena`] + [`BatmapArena::write_to`] and served
//! from a snapshot by a later process.
//!
//! ## Exactness guarantee
//!
//! Every counting method on this type is **exact**, even when cuckoo
//! construction dropped elements: the positional count only sees the
//! stored remainder of each set, so [`BatmapCollection::intersect_count`]
//! applies the failed-insertion correction (the same recovery the
//! mining pipeline's `pairminer::failed` path performs): with
//! `Aᵢ = A'ᵢ ⊎ Fᵢ` (stored ⊎ failed),
//!
//! ```text
//! |Aᵢ ∩ Aⱼ| = |A'ᵢ ∩ A'ⱼ|  (positional sweep)
//!           + |Fᵢ ∩ A'ⱼ|   (membership probes into j's batmap)
//!           + |A'ᵢ ∩ Fⱼ|   (membership probes into i's batmap)
//!           + |Fᵢ ∩ Fⱼ|    (sorted-merge of the two failure lists)
//! ```
//!
//! Failures are absent at the paper's load factors, so the correction
//! terms are almost always empty and cost nothing; when they are not,
//! the counts stay right instead of silently undercounting.

use crate::arena::{ArenaBuilder, BatmapArena, BatmapRef};
use crate::builder;
use crate::params::{BatmapParams, ParamsHandle};
use hpcutil::MemoryFootprint;
use std::sync::Arc;

/// A family of batmaps over one shared universe, stored contiguously.
#[derive(Debug, Clone)]
pub struct BatmapCollection {
    arena: BatmapArena,
    /// `(set index, element)` pairs that failed insertion, in set order.
    failed: Vec<(u32, u32)>,
    /// Per-set sorted failure lists (indices into `failed` would save
    /// memory, but failures are rare enough that clarity wins).
    failed_by_set: Vec<Vec<u32>>,
}

impl BatmapCollection {
    /// Build batmaps for `sets` over the universe `{0..m-1}`.
    pub fn build(m: u64, seed: u64, sets: &[Vec<u32>]) -> Self {
        Self::with_params(Arc::new(BatmapParams::new(m, seed)), sets)
    }

    /// Build with explicit parameters (e.g. a GPU-compatible shift).
    pub fn with_params(params: ParamsHandle, sets: &[Vec<u32>]) -> Self {
        let mut arena = ArenaBuilder::new(params.clone());
        let mut failed = Vec::new();
        let mut failed_by_set = vec![Vec::new(); sets.len()];
        for (idx, set) in sets.iter().enumerate() {
            let out = builder::build(params.clone(), set);
            for &x in &out.failed {
                failed.push((idx as u32, x));
            }
            let mut fs = out.failed;
            fs.sort_unstable();
            failed_by_set[idx] = fs;
            arena.push(&out.batmap);
        }
        BatmapCollection {
            arena: arena.finish(),
            failed,
            failed_by_set,
        }
    }

    /// Adopt an existing arena (e.g. one loaded from a snapshot). The
    /// arena must have been built loss-free: a snapshot carries no
    /// failure lists, so counts over it assume none were needed (which
    /// [`BatmapCollection::failed`] being empty asserts to callers).
    pub fn from_arena(arena: BatmapArena) -> Self {
        let n = arena.len();
        BatmapCollection {
            arena,
            failed: Vec::new(),
            failed_by_set: vec![Vec::new(); n],
        }
    }

    /// Number of sets.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// True when the collection holds no sets.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// The shared parameters.
    pub fn params(&self) -> &ParamsHandle {
        self.arena.params()
    }

    /// Zero-copy view of set `i`'s batmap.
    pub fn get(&self, i: usize) -> BatmapRef<'_> {
        self.arena.get(i)
    }

    /// The backing arena (for snapshot persistence or bulk sweeps).
    pub fn arena(&self) -> &BatmapArena {
        &self.arena
    }

    /// Elements whose insertion failed, as `(set index, element)`.
    /// Counts remain exact regardless (see the module docs); this is
    /// informational — e.g. to decide on a rebuild with another seed
    /// before persisting, since snapshots drop the failure lists.
    pub fn failed(&self) -> &[(u32, u32)] {
        &self.failed
    }

    /// `|setᵢ ∩ setⱼ|` — exact, including elements whose insertion
    /// failed (see the module-level exactness guarantee).
    pub fn intersect_count(&self, i: usize, j: usize) -> u64 {
        let a = self.arena.get(i);
        let b = self.arena.get(j);
        let mut count = a.intersect_count(&b);
        let (fi, fj) = (&self.failed_by_set[i], &self.failed_by_set[j]);
        if fi.is_empty() && fj.is_empty() {
            return count;
        }
        if i == j {
            // Self-intersection: the failed elements belong to the set.
            return count + fi.len() as u64;
        }
        // |Fᵢ ∩ A'ⱼ| and |A'ᵢ ∩ Fⱼ|: O(1) exact membership probes.
        count += fi.iter().filter(|&&x| b.contains(x)).count() as u64;
        count += fj.iter().filter(|&&x| a.contains(x)).count() as u64;
        // |Fᵢ ∩ Fⱼ|: both lists are sorted.
        let (mut pi, mut pj) = (0usize, 0usize);
        while pi < fi.len() && pj < fj.len() {
            match fi[pi].cmp(&fj[pj]) {
                std::cmp::Ordering::Less => pi += 1,
                std::cmp::Ordering::Greater => pj += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    pi += 1;
                    pj += 1;
                }
            }
        }
        count
    }

    /// Counts of set `i` against every set (including itself). Exact
    /// (routes through [`BatmapCollection::intersect_count`]).
    pub fn count_against_all(&self, i: usize) -> Vec<u64> {
        (0..self.len())
            .map(|j| self.intersect_count(i, j))
            .collect()
    }

    /// All pairwise counts `(i, j, |setᵢ ∩ setⱼ|)` for `i < j`,
    /// omitting empty intersections. Exact.
    pub fn all_pairs(&self) -> Vec<(u32, u32, u64)> {
        let mut out = Vec::new();
        for i in 0..self.len() {
            for j in (i + 1)..self.len() {
                let c = self.intersect_count(i, j);
                if c > 0 {
                    out.push((i as u32, j as u32, c));
                }
            }
        }
        out
    }
}

impl MemoryFootprint for BatmapCollection {
    fn heap_bytes(&self) -> usize {
        self.arena.heap_bytes()
            + self.failed.capacity() * 8
            + self
                .failed_by_set
                .iter()
                .map(|f| f.capacity() * 4)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn sets() -> Vec<Vec<u32>> {
        vec![
            (0..500).map(|i| i * 2).collect(),
            (0..300).map(|i| i * 3).collect(),
            (0..100).map(|i| i * 10).collect(),
            vec![],
        ]
    }

    fn exact(a: &[u32], b: &[u32]) -> u64 {
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        b.iter().filter(|x| sa.contains(x)).count() as u64
    }

    #[test]
    fn pairwise_counts_exact() {
        let s = sets();
        let c = BatmapCollection::build(10_000, 5, &s);
        assert!(c.failed().is_empty());
        for i in 0..s.len() {
            for j in 0..s.len() {
                assert_eq!(c.intersect_count(i, j), exact(&s[i], &s[j]), "({i},{j})");
            }
        }
    }

    #[test]
    fn all_pairs_matches_pointwise_and_skips_zeros() {
        let s = sets();
        let c = BatmapCollection::build(10_000, 5, &s);
        let pairs = c.all_pairs();
        for &(i, j, count) in &pairs {
            assert!(i < j);
            assert_eq!(count, exact(&s[i as usize], &s[j as usize]));
            assert!(count > 0);
        }
        // The empty set intersects nothing; pairs with it are omitted.
        assert!(pairs.iter().all(|&(i, j, _)| i != 3 && j != 3));
    }

    #[test]
    fn count_against_all_row() {
        let s = sets();
        let c = BatmapCollection::build(10_000, 5, &s);
        let row = c.count_against_all(1);
        assert_eq!(row.len(), 4);
        assert_eq!(row[1], s[1].len() as u64);
        assert_eq!(row[0], exact(&s[0], &s[1]));
    }

    #[test]
    fn counts_stay_exact_under_forced_failures() {
        // MaxLoop = 1 on dense sets in a large universe forces dropped
        // insertions; every counting method must correct for them.
        let params = Arc::new(BatmapParams::with_max_loop(1 << 15, 0xFEED, 1));
        let s: Vec<Vec<u32>> = vec![
            (0..4000u32).collect(),
            (0..4000u32).map(|i| i * 2 % (1 << 15)).collect(),
            (1000..3000u32).collect(),
        ];
        let c = BatmapCollection::with_params(params, &s);
        assert!(
            !c.failed().is_empty(),
            "fixture must actually force failures"
        );
        for i in 0..s.len() {
            for j in 0..s.len() {
                assert_eq!(
                    c.intersect_count(i, j),
                    exact(&s[i], &s[j]),
                    "pair ({i},{j}) with failures"
                );
            }
        }
        // The row and all-pairs views inherit the correction.
        for (i, row) in (0..s.len()).map(|i| (i, c.count_against_all(i))) {
            for (j, &got) in row.iter().enumerate() {
                assert_eq!(got, exact(&s[i], &s[j]));
            }
        }
        for (i, j, got) in c.all_pairs() {
            assert_eq!(got, exact(&s[i as usize], &s[j as usize]));
        }
    }

    #[test]
    fn snapshot_served_collection_counts_identically() {
        let s = sets();
        let c = BatmapCollection::build(10_000, 5, &s);
        assert!(c.failed().is_empty(), "loss-free build required to persist");
        let mut buf = Vec::new();
        c.arena().write_to(&mut buf).unwrap();
        let served = BatmapCollection::from_arena(
            crate::BatmapArena::read_from(&mut buf.as_slice()).unwrap(),
        );
        assert_eq!(served.len(), c.len());
        for i in 0..c.len() {
            for j in 0..c.len() {
                assert_eq!(served.intersect_count(i, j), c.intersect_count(i, j));
            }
        }
    }

    #[test]
    fn footprint_counts_arena() {
        let c = BatmapCollection::build(10_000, 5, &sets());
        let direct: usize = (0..c.len()).map(|i| c.get(i).width_bytes()).sum();
        assert!(c.heap_bytes() >= direct);
    }
}
