//! Deterministic sharding of a corpus' sets across worker threads.
//!
//! The engine carves the dense id range `0..n_sets` into contiguous,
//! near-equal chunks — one per worker. It shards by **original item
//! id**: item ids are the one name for a set that survives compaction
//! (the width-sorted arena order permutes every time deltas fold in),
//! so a job enqueued before a compaction still routes to — and is
//! answered by — the right owner after it. Determinism is deliberate
//! too: the map depends only on `(n_sets, shards)`, so a
//! single-threaded replay routes every query to the same shard and
//! produces byte-identical responses.

/// Contiguous range map from dense set ids to shard indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    n_sets: u32,
    chunk: u32,
    shards: u32,
}

impl ShardMap {
    /// Map `n_sets` sorted positions onto `shards` contiguous ranges
    /// (`shards` is clamped to at least 1; shards beyond `n_sets` end
    /// up owning empty ranges).
    pub fn new(n_sets: u32, shards: usize) -> Self {
        let shards = shards.max(1) as u32;
        let chunk = n_sets.div_ceil(shards).max(1);
        ShardMap {
            n_sets,
            chunk,
            shards,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Number of sets mapped.
    pub fn n_sets(&self) -> u32 {
        self.n_sets
    }

    /// The shard owning sorted position `pos`.
    ///
    /// # Panics
    /// Panics if `pos` is out of range.
    pub fn shard_of(&self, pos: u32) -> u32 {
        assert!(pos < self.n_sets, "position {pos} out of range");
        (pos / self.chunk).min(self.shards - 1)
    }

    /// The contiguous range of sorted positions shard `shard` owns
    /// (possibly empty for trailing shards of a small corpus).
    pub fn range(&self, shard: u32) -> std::ops::Range<u32> {
        let lo = (shard * self.chunk).min(self.n_sets);
        let hi = ((shard + 1) * self.chunk).min(self.n_sets);
        lo..hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_and_agree_with_shard_of() {
        for n_sets in [0u32, 1, 7, 16, 100, 1013] {
            for shards in [1usize, 2, 3, 8, 200] {
                let map = ShardMap::new(n_sets, shards);
                let mut covered = 0u32;
                for shard in 0..map.shards() {
                    let range = map.range(shard);
                    assert_eq!(range.start, covered, "gap before shard {shard}");
                    for pos in range.clone() {
                        assert_eq!(map.shard_of(pos), shard, "n={n_sets} shards={shards}");
                    }
                    covered = range.end;
                }
                assert_eq!(covered, n_sets, "n={n_sets} shards={shards}");
            }
        }
    }

    #[test]
    fn chunks_are_balanced() {
        let map = ShardMap::new(1000, 3);
        let sizes: Vec<u32> = (0..3).map(|s| map.range(s).len() as u32).collect();
        assert_eq!(sizes.iter().sum::<u32>(), 1000);
        assert!(sizes.iter().all(|&s| (332..=334).contains(&s)), "{sizes:?}");
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let map = ShardMap::new(10, 0);
        assert_eq!(map.shards(), 1);
        assert_eq!(map.range(0), 0..10);
    }

    #[test]
    #[should_panic]
    fn out_of_range_position_panics() {
        ShardMap::new(4, 2).shard_of(4);
    }
}
