//! The versioned wire protocol: typed request/response enums and their
//! little-endian binary encoding.
//!
//! Both sides speak length-prefixed frames over a byte stream:
//!
//! ```text
//! request frame  = u32 payload_len | payload
//! payload        = u64 request_id | u32 corpus | u8 tag | body
//! response frame = u32 payload_len | payload
//! payload        = u64 request_id | u8 tag | body
//! ```
//!
//! A connection opens with a server handshake — magic bytes, protocol
//! version, corpus count — so clients fail fast against the wrong
//! endpoint or an incompatible server. Request ids are chosen by the
//! client and echoed verbatim; responses may arrive **out of order**
//! (different shards finish at different times), which is what lets a
//! client pipeline a batch of requests and the server coalesce them.
//!
//! Every decoder is bounds-checked against the declared frame length
//! and frames are capped at [`MAX_FRAME_BYTES`], so a corrupt or
//! malicious length field surfaces as a protocol error, never as an
//! unbounded allocation.

use std::io::{self, Read, Write};

/// Magic bytes the server sends first on every connection.
pub const HANDSHAKE_MAGIC: [u8; 8] = *b"BMSERVE\0";

/// Wire protocol version (bumped on any incompatible encoding change).
/// Version 2 added [`Response::Overloaded`] load shedding; version 3
/// added the write path ([`Request::Insert`] / [`Request::Remove`] /
/// [`Request::Flush`] and their [`Response::Applied`] /
/// [`Response::Flushed`] acknowledgements).
pub const PROTOCOL_VERSION: u32 = 3;

/// Hard cap on one frame's payload, request or response (16 MiB).
pub const MAX_FRAME_BYTES: usize = 1 << 24;

/// A query against one served corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Exact intersection count of two stored sets, by original item
    /// id.
    Count {
        /// First set (original item id).
        a: u32,
        /// Second set (original item id).
        b: u32,
    },
    /// Exact membership test: does stored set `set` contain `element`?
    Member {
        /// The set to probe (original item id).
        set: u32,
        /// The element (transaction id).
        element: u32,
    },
    /// The `k` stored sets most similar to the probe — largest exact
    /// intersection count, ties broken by ascending set id; zero-count
    /// sets and the probe set itself are omitted.
    TopK {
        /// What to intersect against every stored set.
        probe: Probe,
        /// Maximum number of results.
        k: u32,
    },
    /// Run the levelwise miner over the corpus and return a summary.
    Mine {
        /// Largest itemset size (`2..=15`).
        depth: u32,
        /// Minimum support.
        minsup: u64,
    },
    /// Corpus metadata.
    Info,
    /// Ask the server to stop accepting connections and exit; answered
    /// with [`Response::Bye`].
    Shutdown,
    /// Fill free transaction slot `tid` with `items` (strictly
    /// ascending original item ids). **Idempotent**: re-inserting a
    /// live slot with identical items answers [`Response::Applied`]`(0)`
    /// — so a client may safely re-issue after an ambiguous transport
    /// failure — while different items are an error.
    Insert {
        /// The transaction slot (`< m`).
        tid: u32,
        /// The transaction's items, strictly ascending.
        items: Vec<u32>,
    },
    /// Clear live transaction slot `tid`. **Idempotent**: removing a
    /// free slot answers [`Response::Applied`]`(0)`.
    Remove {
        /// The transaction slot (`< m`).
        tid: u32,
    },
    /// Compact accumulated deltas into a fresh base arena. Queries are
    /// unaffected (compaction never changes any answer); answered with
    /// [`Response::Flushed`].
    Flush,
}

/// The probe side of a [`Request::TopK`] query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Probe {
    /// An already-stored set, by original item id.
    Set(u32),
    /// An ad-hoc set of elements (transaction ids), strictly ascending.
    Elements(Vec<u32>),
}

/// The answer to one [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Exact intersection count.
    Count(u64),
    /// Exact membership.
    Member(bool),
    /// Most-similar sets as `(set id, intersection count)`, count
    /// descending then id ascending.
    TopK(Vec<(u32, u64)>),
    /// Mining summary.
    Mined(MineSummary),
    /// Corpus metadata.
    Info(CorpusInfo),
    /// The request could not be answered; human-readable reason.
    Error(String),
    /// Acknowledges [`Request::Shutdown`]; the connection closes after
    /// this frame.
    Bye,
    /// The server shed this request because its admission queue is
    /// full. The query was **not** executed; it is safe (and expected)
    /// for the client to retry after backing off.
    Overloaded,
    /// A write was applied: the number of set memberships it changed
    /// (`0` for an idempotent re-apply).
    Applied(u64),
    /// A [`Request::Flush`] compacted: the number of delta memberships
    /// folded into the fresh base (`0` when the corpus was already
    /// clean).
    Flushed(u64),
}

/// Summary of one levelwise mining run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MineSummary {
    /// Per-level accounting, ascending `k`.
    pub levels: Vec<LevelSummary>,
    /// Frequent itemsets, sorted by (size, items); truncated to the
    /// server's cap.
    pub itemsets: Vec<ItemsetEntry>,
    /// True when `itemsets` was truncated.
    pub truncated: bool,
}

/// One level of a [`MineSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelSummary {
    /// Itemset size.
    pub k: u32,
    /// Candidates generated.
    pub candidates: u64,
    /// Candidates at or above minsup.
    pub frequent: u64,
}

/// One frequent itemset of a [`MineSummary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemsetEntry {
    /// The items, ascending.
    pub items: Vec<u32>,
    /// Exact support.
    pub support: u64,
}

/// Metadata of one served corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusInfo {
    /// Real (unpadded) stored sets.
    pub sets: u32,
    /// Universe size (transaction-id domain).
    pub m: u64,
    /// Sets per storage representation, `[batmap, bitmap, tidlist]`,
    /// padding included.
    pub repr_histogram: [u64; 3],
    /// Failed insertions the correction path covers.
    pub failed: u64,
    /// Shard workers serving this corpus.
    pub shards: u32,
}

/// A decoding failure: malformed, truncated, oversized, or
/// unknown-tagged frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

impl From<ProtoError> for io::Error {
    fn from(e: ProtoError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

fn err(what: impl Into<String>) -> ProtoError {
    ProtoError(what.into())
}

// ---------------------------------------------------------------------
// Encoding primitives. All integers little-endian; vectors and strings
// carry a u32 element/byte count.

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| err("truncated frame"))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn vec_u32(&mut self) -> Result<Vec<u32>, ProtoError> {
        let n = self.u32()? as usize;
        // The count must be coverable by the remaining bytes before
        // anything is reserved — a lying length field must not allocate.
        if n.checked_mul(4)
            .is_none_or(|b| b > self.bytes.len() - self.at)
        {
            return Err(err("element list longer than its frame"));
        }
        (0..n).map(|_| self.u32()).collect()
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| err("string is not UTF-8"))
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(err("trailing bytes after frame body"))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_vec_u32(out: &mut Vec<u8>, v: &[u32]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_u32(out, x);
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

impl Request {
    /// Append this request's tagged body (everything after the request
    /// id and corpus index) to `out`.
    pub fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Request::Count { a, b } => {
                out.push(0);
                put_u32(out, *a);
                put_u32(out, *b);
            }
            Request::Member { set, element } => {
                out.push(1);
                put_u32(out, *set);
                put_u32(out, *element);
            }
            Request::TopK { probe, k } => {
                out.push(2);
                put_u32(out, *k);
                match probe {
                    Probe::Set(id) => {
                        out.push(0);
                        put_u32(out, *id);
                    }
                    Probe::Elements(elements) => {
                        out.push(1);
                        put_vec_u32(out, elements);
                    }
                }
            }
            Request::Mine { depth, minsup } => {
                out.push(3);
                put_u32(out, *depth);
                put_u64(out, *minsup);
            }
            Request::Info => out.push(4),
            Request::Shutdown => out.push(5),
            Request::Insert { tid, items } => {
                out.push(6);
                put_u32(out, *tid);
                put_vec_u32(out, items);
            }
            Request::Remove { tid } => {
                out.push(7);
                put_u32(out, *tid);
            }
            Request::Flush => out.push(8),
        }
    }

    /// Decode a tagged request body (inverse of
    /// [`Request::encode_body`]), consuming the whole slice.
    pub fn decode_body(bytes: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cursor::new(bytes);
        let req = match c.u8()? {
            0 => Request::Count {
                a: c.u32()?,
                b: c.u32()?,
            },
            1 => Request::Member {
                set: c.u32()?,
                element: c.u32()?,
            },
            2 => {
                let k = c.u32()?;
                let probe = match c.u8()? {
                    0 => Probe::Set(c.u32()?),
                    1 => Probe::Elements(c.vec_u32()?),
                    t => return Err(err(format!("unknown probe tag {t}"))),
                };
                Request::TopK { probe, k }
            }
            3 => Request::Mine {
                depth: c.u32()?,
                minsup: c.u64()?,
            },
            4 => Request::Info,
            5 => Request::Shutdown,
            6 => Request::Insert {
                tid: c.u32()?,
                items: c.vec_u32()?,
            },
            7 => Request::Remove { tid: c.u32()? },
            8 => Request::Flush,
            t => return Err(err(format!("unknown request tag {t}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Append this response's tagged body (everything after the request
    /// id) to `out`.
    pub fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Response::Count(n) => {
                out.push(0);
                put_u64(out, *n);
            }
            Response::Member(present) => {
                out.push(1);
                out.push(*present as u8);
            }
            Response::TopK(hits) => {
                out.push(2);
                put_u32(out, hits.len() as u32);
                for &(id, count) in hits {
                    put_u32(out, id);
                    put_u64(out, count);
                }
            }
            Response::Mined(summary) => {
                out.push(3);
                put_u32(out, summary.levels.len() as u32);
                for level in &summary.levels {
                    put_u32(out, level.k);
                    put_u64(out, level.candidates);
                    put_u64(out, level.frequent);
                }
                put_u32(out, summary.itemsets.len() as u32);
                for set in &summary.itemsets {
                    put_vec_u32(out, &set.items);
                    put_u64(out, set.support);
                }
                out.push(summary.truncated as u8);
            }
            Response::Info(info) => {
                out.push(4);
                put_u32(out, info.sets);
                put_u64(out, info.m);
                for &c in &info.repr_histogram {
                    put_u64(out, c);
                }
                put_u64(out, info.failed);
                put_u32(out, info.shards);
            }
            Response::Error(message) => {
                out.push(5);
                put_string(out, message);
            }
            Response::Bye => out.push(6),
            Response::Overloaded => out.push(7),
            Response::Applied(n) => {
                out.push(8);
                put_u64(out, *n);
            }
            Response::Flushed(n) => {
                out.push(9);
                put_u64(out, *n);
            }
        }
    }

    /// Decode a tagged response body (inverse of
    /// [`Response::encode_body`]), consuming the whole slice.
    pub fn decode_body(bytes: &[u8]) -> Result<Response, ProtoError> {
        let mut c = Cursor::new(bytes);
        let resp = match c.u8()? {
            0 => Response::Count(c.u64()?),
            1 => Response::Member(match c.u8()? {
                0 => false,
                1 => true,
                b => return Err(err(format!("bad bool byte {b}"))),
            }),
            2 => {
                let n = c.u32()? as usize;
                let mut hits = Vec::new();
                for _ in 0..n {
                    hits.push((c.u32()?, c.u64()?));
                }
                Response::TopK(hits)
            }
            3 => {
                let n_levels = c.u32()? as usize;
                let mut levels = Vec::new();
                for _ in 0..n_levels {
                    levels.push(LevelSummary {
                        k: c.u32()?,
                        candidates: c.u64()?,
                        frequent: c.u64()?,
                    });
                }
                let n_sets = c.u32()? as usize;
                let mut itemsets = Vec::new();
                for _ in 0..n_sets {
                    itemsets.push(ItemsetEntry {
                        items: c.vec_u32()?,
                        support: c.u64()?,
                    });
                }
                let truncated = c.u8()? != 0;
                Response::Mined(MineSummary {
                    levels,
                    itemsets,
                    truncated,
                })
            }
            4 => Response::Info(CorpusInfo {
                sets: c.u32()?,
                m: c.u64()?,
                repr_histogram: [c.u64()?, c.u64()?, c.u64()?],
                failed: c.u64()?,
                shards: c.u32()?,
            }),
            5 => Response::Error(c.string()?),
            6 => Response::Bye,
            7 => Response::Overloaded,
            8 => Response::Applied(c.u64()?),
            9 => Response::Flushed(c.u64()?),
            t => return Err(err(format!("unknown response tag {t}"))),
        };
        c.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Framing over a byte stream.

/// Write one request frame: id, corpus index, tagged body, all behind a
/// u32 length prefix.
pub fn write_request<W: Write>(
    w: &mut W,
    id: u64,
    corpus: u32,
    request: &Request,
) -> io::Result<()> {
    let mut payload = Vec::with_capacity(32);
    put_u64(&mut payload, id);
    put_u32(&mut payload, corpus);
    request.encode_body(&mut payload);
    write_frame(w, &payload)
}

/// Read one request frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_request<R: Read>(r: &mut R) -> io::Result<Option<(u64, u32, Request)>> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let mut c = Cursor::new(&payload);
    let id = c.u64()?;
    let corpus = c.u32()?;
    let request = Request::decode_body(&payload[c.at..])?;
    Ok(Some((id, corpus, request)))
}

/// Write one response frame: echoed request id plus the tagged body.
pub fn write_response<W: Write>(w: &mut W, id: u64, response: &Response) -> io::Result<()> {
    let mut payload = Vec::with_capacity(32);
    put_u64(&mut payload, id);
    response.encode_body(&mut payload);
    write_frame(w, &payload)
}

/// Encode one response frame into a byte vector (what the replay test
/// pins batched-vs-sequential identity on).
pub fn encode_response(id: u64, response: &Response) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32);
    put_u64(&mut payload, id);
    response.encode_body(&mut payload);
    let mut frame = Vec::with_capacity(payload.len() + 4);
    put_u32(&mut frame, payload.len() as u32);
    frame.extend_from_slice(&payload);
    frame
}

/// Read one response frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_response<R: Read>(r: &mut R) -> io::Result<Option<(u64, Response)>> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let mut c = Cursor::new(&payload);
    let id = c.u64()?;
    let response = Response::decode_body(&payload[c.at..])?;
    Ok(Some((id, response)))
}

fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(err(format!("frame of {} bytes exceeds cap", payload.len())).into());
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// True for the error kinds a socket read timeout surfaces as.
///
/// `read_frame`-based decoders propagate a timeout **at a frame
/// boundary** with its original kind — the peer is merely idle, and a
/// server with an idle-eviction policy decides what to do — but convert
/// a timeout **inside** a frame into a fatal protocol error: a peer
/// that stalls mid-frame is broken or hostile (slow-loris), and the
/// partial frame can never be resumed.
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    // EOF before the first length byte is a clean close; EOF inside a
    // frame is an error.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(err("connection closed mid-frame").into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Idle (boundary) timeouts keep their kind for the caller's
            // idle-timeout policy; mid-frame stalls are fatal.
            Err(e) if is_timeout(&e) && filled == 0 => return Err(e),
            Err(e) if is_timeout(&e) => return Err(err("peer stalled mid-frame").into()),
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(err(format!("frame of {len} bytes exceeds cap")).into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if is_timeout(&e) {
            err("peer stalled mid-frame").into()
        } else {
            e
        }
    })?;
    Ok(Some(payload))
}

/// Write the server's connection handshake: magic, protocol version,
/// corpus count.
pub fn write_handshake<W: Write>(w: &mut W, corpora: u32) -> io::Result<()> {
    w.write_all(&HANDSHAKE_MAGIC)?;
    w.write_all(&PROTOCOL_VERSION.to_le_bytes())?;
    w.write_all(&corpora.to_le_bytes())
}

/// Read and validate the server handshake; returns the corpus count.
pub fn read_handshake<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if magic != HANDSHAKE_MAGIC {
        return Err(err("not a batmap server (bad magic)").into());
    }
    let mut word = [0u8; 4];
    r.read_exact(&mut word)?;
    let version = u32::from_le_bytes(word);
    if version != PROTOCOL_VERSION {
        return Err(err(format!("unsupported protocol version {version}")).into());
    }
    r.read_exact(&mut word)?;
    Ok(u32::from_le_bytes(word))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut buf = Vec::new();
        write_request(&mut buf, 42, 7, &req).unwrap();
        let (id, corpus, back) = read_request(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!((id, corpus), (42, 7));
        assert_eq!(back, req);
    }

    fn roundtrip_response(resp: Response) {
        let mut buf = Vec::new();
        write_response(&mut buf, 9, &resp).unwrap();
        assert_eq!(buf, encode_response(9, &resp));
        let (id, back) = read_response(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(id, 9);
        assert_eq!(back, resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Count { a: 3, b: 250_000 });
        roundtrip_request(Request::Member {
            set: 0,
            element: u32::MAX,
        });
        roundtrip_request(Request::TopK {
            probe: Probe::Set(17),
            k: 5,
        });
        roundtrip_request(Request::TopK {
            probe: Probe::Elements(vec![1, 5, 9, 1000]),
            k: 0,
        });
        roundtrip_request(Request::Mine {
            depth: 4,
            minsup: 1 << 40,
        });
        roundtrip_request(Request::Info);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Insert {
            tid: 12,
            items: vec![0, 7, 9, 4_000_000],
        });
        roundtrip_request(Request::Insert {
            tid: u32::MAX,
            items: vec![],
        });
        roundtrip_request(Request::Remove { tid: 99 });
        roundtrip_request(Request::Flush);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Count(u64::MAX));
        roundtrip_response(Response::Member(true));
        roundtrip_response(Response::Member(false));
        roundtrip_response(Response::TopK(vec![(1, 100), (9, 100), (2, 3)]));
        roundtrip_response(Response::Mined(MineSummary {
            levels: vec![LevelSummary {
                k: 2,
                candidates: 10,
                frequent: 4,
            }],
            itemsets: vec![ItemsetEntry {
                items: vec![1, 2, 3],
                support: 77,
            }],
            truncated: true,
        }));
        roundtrip_response(Response::Info(CorpusInfo {
            sets: 100,
            m: 50_000,
            repr_histogram: [90, 8, 2],
            failed: 3,
            shards: 4,
        }));
        roundtrip_response(Response::Error("no such set".into()));
        roundtrip_response(Response::Bye);
        roundtrip_response(Response::Overloaded);
        roundtrip_response(Response::Applied(3));
        roundtrip_response(Response::Applied(0));
        roundtrip_response(Response::Flushed(u64::MAX));
    }

    #[test]
    fn clean_eof_is_none_and_mid_frame_eof_is_error() {
        assert!(read_request(&mut [].as_slice()).unwrap().is_none());
        assert!(read_response(&mut [].as_slice()).unwrap().is_none());
        let mut buf = Vec::new();
        write_request(&mut buf, 1, 0, &Request::Info).unwrap();
        for cut in 1..buf.len() {
            assert!(
                read_request(&mut &buf[..cut]).is_err(),
                "cut at {cut} must error"
            );
        }
    }

    #[test]
    fn hostile_lengths_are_rejected_without_allocation() {
        // Frame length beyond the cap.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_request(&mut buf.as_slice()).is_err());
        // Probe element count far beyond the actual frame bytes.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.push(2); // TopK
        payload.extend_from_slice(&1u32.to_le_bytes()); // k
        payload.push(1); // Probe::Elements
        payload.extend_from_slice(&(u32::MAX).to_le_bytes()); // huge count
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        assert!(read_request(&mut frame.as_slice()).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut body = Vec::new();
        Request::Info.encode_body(&mut body);
        body.push(0xAB);
        assert!(Request::decode_body(&body).is_err());
    }

    #[test]
    fn handshake_roundtrips_and_validates() {
        let mut buf = Vec::new();
        write_handshake(&mut buf, 3).unwrap();
        assert_eq!(read_handshake(&mut buf.as_slice()).unwrap(), 3);
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(read_handshake(&mut bad.as_slice()).is_err());
        let mut bad = buf.clone();
        bad[8] ^= 0xFF; // version
        assert!(read_handshake(&mut bad.as_slice()).is_err());
    }
}
