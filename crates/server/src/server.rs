//! The socket front end: listeners, connection threads, shutdown.
//!
//! std-only, thread-per-connection. Each accepted connection gets a
//! **reader** thread (decode frames, submit to the engine) and a
//! **writer** thread (drain the connection's response channel back onto
//! the socket). Decoupling the two is what lets a client pipeline: the
//! reader keeps feeding shard queues while earlier answers are still
//! being written, and the shard workers' admission queues see the whole
//! burst at once — which is exactly what the batching sweeps coalesce.
//!
//! The writer flushes only when its channel runs momentarily dry, so a
//! burst of small responses leaves as a few large writes rather than
//! one syscall each.

use crate::engine::QueryEngine;
use crate::proto::{is_timeout, read_request, write_handshake, write_response, Request, Response};
use hpcutil::{fault_point, lock_recover};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::TryRecvError;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-connection robustness knobs. `Default` disables every deadline —
/// the trusting pre-hardening behavior; production deployments should
/// set all three.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerConfig {
    /// Socket-level read deadline. Doubles as the idle-poll tick: a
    /// timeout *between* frames counts toward [`ServerConfig::idle_timeout`]
    /// (or is ignored when that is unset), while a timeout *inside* a
    /// frame is fatal — a stalled (slow-loris) peer is evicted, because
    /// a partial frame can never be resumed.
    pub read_timeout: Option<Duration>,
    /// Socket-level write deadline: a peer that stops draining its
    /// receive buffer for this long gets its connection dropped instead
    /// of blocking the writer thread forever.
    pub write_timeout: Option<Duration>,
    /// Evict a connection that has not delivered a complete frame for
    /// this long. Requires `read_timeout` (the poll tick) to be set;
    /// eviction granularity is one tick.
    pub idle_timeout: Option<Duration>,
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

/// A bound-but-not-yet-serving socket. Bind with [`Server::bind_tcp`]
/// or [`Server::bind_unix`], then hand it an engine with
/// [`Server::serve`].
pub struct Server {
    listener: Listener,
    config: ServerConfig,
}

impl Server {
    /// Bind a TCP listener (use port 0 for an ephemeral port; the bound
    /// address is on the returned handle).
    pub fn bind_tcp<A: ToSocketAddrs>(addr: A) -> io::Result<Server> {
        Ok(Server {
            listener: Listener::Tcp(TcpListener::bind(addr)?),
            config: ServerConfig::default(),
        })
    }

    /// Bind a Unix-domain socket at `path` (removed again when the
    /// server shuts down).
    ///
    /// A *stale* socket file — left behind by a crashed prior run, with
    /// no listener behind it — is detected by probing it with a
    /// connect: refused means dead, so the file is unlinked and the
    /// bind retried. A path another process is actively listening on
    /// still fails with `AddrInUse`.
    #[cfg(unix)]
    pub fn bind_unix<P: Into<PathBuf>>(path: P) -> io::Result<Server> {
        let path = path.into();
        let listener = match UnixListener::bind(&path) {
            Ok(l) => l,
            Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                match UnixStream::connect(&path) {
                    // Someone answered: a live server owns this path.
                    Ok(_) => return Err(e),
                    // Nobody home: the socket file is a corpse from a
                    // crashed run. Unlink and take the address.
                    Err(probe) if probe.kind() == io::ErrorKind::ConnectionRefused => {
                        std::fs::remove_file(&path)?;
                        UnixListener::bind(&path)?
                    }
                    Err(_) => return Err(e),
                }
            }
            Err(e) => return Err(e),
        };
        Ok(Server {
            listener: Listener::Unix(listener, path),
            config: ServerConfig::default(),
        })
    }

    /// Replace the per-connection robustness knobs (consuming builder).
    pub fn config(mut self, config: ServerConfig) -> Server {
        self.config = config;
        self
    }

    /// Start serving `engine` on the bound socket. Returns immediately;
    /// accepting and answering happen on background threads until a
    /// client sends [`Request::Shutdown`] or
    /// [`ServerHandle::shutdown`] is called.
    pub fn serve(self, engine: QueryEngine) -> ServerHandle {
        let engine = Arc::new(engine);
        let stop = Arc::new(AtomicBool::new(false));
        let (tcp_addr, unix_path) = match &self.listener {
            Listener::Tcp(l) => (l.local_addr().ok(), None),
            #[cfg(unix)]
            Listener::Unix(_, path) => (None, Some(path.clone())),
        };
        let config = self.config;
        let accept = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("batmap-accept".into())
                .spawn(move || accept_loop(self.listener, config, engine, stop))
                .expect("spawn accept thread")
        };
        ServerHandle {
            tcp_addr,
            unix_path,
            stop,
            accept: Some(accept),
            _engine: engine,
        }
    }
}

/// A running server. Dropping the handle (or calling
/// [`ServerHandle::join`]) shuts it down and waits for the accept
/// thread — which drains in-flight requests, closes the read half of
/// every idle connection, and joins the connection threads.
pub struct ServerHandle {
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    _engine: Arc<QueryEngine>,
}

impl ServerHandle {
    /// The bound TCP address, when serving TCP.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix-socket path, when serving a Unix socket.
    pub fn unix_path(&self) -> Option<&std::path::Path> {
        self.unix_path.as_deref()
    }

    /// Ask the server to stop accepting connections (idempotent). A
    /// client's [`Request::Shutdown`] does the same thing remotely.
    pub fn shutdown(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            self.poke();
        }
    }

    /// Shut down and wait for the accept thread (and with it, every
    /// connection thread) to finish.
    pub fn join(mut self) {
        self.shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Unblock a blocking `accept` by connecting to ourselves.
    fn poke(&self) {
        if let Some(addr) = self.tcp_addr {
            let _ = TcpStream::connect(addr);
        }
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = UnixStream::connect(path);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Either flavour of accepted connection; both are `Read + Write +
/// try_clone`.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    /// Close the receive half only: a reader parked in a blocking read
    /// wakes with EOF, while the connection's writer can still flush
    /// already-queued responses (the `Bye` in particular).
    fn shutdown_read(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Read),
            #[cfg(unix)]
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Read),
        }
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(dur),
        }
    }

    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(dur),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_write_timeout(dur),
        }
    }
}

impl io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl io::Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Injected connection-level failure: returns `Err` when the named
/// fault site is armed with an error action (the caller treats it as
/// the real I/O failure it stands in for).
fn inject(site: &str) -> io::Result<()> {
    fault_point!(site, |m: String| Err(io::Error::other(m)));
    Ok(())
}

fn accept_loop(
    listener: Listener,
    config: ServerConfig,
    engine: Arc<QueryEngine>,
    stop: Arc<AtomicBool>,
) {
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    // Read-half clones of every live connection, so shutdown can wake
    // readers parked in a blocking read (an idle client would otherwise
    // pin the join forever).
    let live: Arc<Mutex<HashMap<u64, Conn>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut next_conn = 0u64;
    loop {
        let conn = match &listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            }),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
        };
        if stop.load(Ordering::SeqCst) {
            break; // the poke connection (or a racing accept) lands here
        }
        let Ok(conn) = conn else { continue };
        // An injected accept fault models the handshake dying before
        // the connection thread exists: the socket is simply dropped.
        if inject("server.conn.accept").is_err() {
            continue;
        }
        let conn_id = next_conn;
        next_conn += 1;
        if let Ok(clone) = conn.try_clone() {
            lock_recover(&live).insert(conn_id, clone);
        }
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let live = Arc::clone(&live);
        let handle = std::thread::Builder::new()
            .name("batmap-conn".into())
            .spawn(move || {
                let _ = serve_connection(conn, config, &engine, &stop);
                lock_recover(&live).remove(&conn_id);
            })
            .expect("spawn connection thread");
        lock_recover(&conns).push(handle);
    }
    #[cfg(unix)]
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
    for conn in lock_recover(&live).values() {
        let _ = conn.shutdown_read();
    }
    for handle in lock_recover(&conns).drain(..) {
        let _ = handle.join();
    }
}

/// One connection: handshake, then reader-here / writer-thread until
/// EOF, a protocol error, an idle eviction, or a shutdown request.
fn serve_connection(
    conn: Conn,
    config: ServerConfig,
    engine: &Arc<QueryEngine>,
    stop: &AtomicBool,
) -> io::Result<()> {
    let _ = conn.set_read_timeout(config.read_timeout);
    let _ = conn.set_write_timeout(config.write_timeout);
    let write_half = conn.try_clone()?;
    // A second clone for the writer thread to close the *read* half
    // with when writing fails: the reader would otherwise keep feeding
    // the engine jobs whose answers have nowhere to go.
    let reader_waker = conn.try_clone().ok();
    let mut reader = BufReader::new(conn);
    let (tx, rx) = std::sync::mpsc::channel::<(u64, Response)>();

    let corpora = engine.corpora();
    let writer = std::thread::Builder::new()
        .name("batmap-conn-writer".into())
        .spawn(move || {
            let mut w = BufWriter::new(write_half);
            if write_handshake_and_drain(&mut w, corpora, &rx).is_err() {
                if let Some(waker) = reader_waker {
                    let _ = waker.shutdown_read();
                }
            }
        })
        .expect("spawn connection writer");

    let result = (|| -> io::Result<()> {
        let mut last_frame = Instant::now();
        loop {
            let frame = match read_request(&mut reader) {
                Ok(frame) => frame,
                // A timeout at a frame boundary is an idle tick, not an
                // error (mid-frame stalls arrive as InvalidData and
                // fall through to eviction below).
                Err(e) if is_timeout(&e) => {
                    if stop.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    match config.idle_timeout {
                        Some(limit) if last_frame.elapsed() >= limit => {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "idle connection evicted",
                            ));
                        }
                        _ => continue,
                    }
                }
                Err(e) => return Err(e),
            };
            inject("server.conn.read")?;
            let Some((id, corpus, request)) = frame else {
                return Ok(()); // clean EOF
            };
            last_frame = Instant::now();
            let is_shutdown = matches!(request, Request::Shutdown);
            engine.submit(corpus, id, request, &tx);
            if is_shutdown {
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop; the poke is a throwaway
                // connection to ourselves.
                match reader.get_ref() {
                    Conn::Tcp(s) => {
                        // An accepted socket's local address is the
                        // listener's address.
                        if let Ok(addr) = s.local_addr() {
                            let _ = TcpStream::connect(addr);
                        }
                    }
                    #[cfg(unix)]
                    Conn::Unix(s) => {
                        if let Some(path) = s
                            .local_addr()
                            .ok()
                            .and_then(|a| a.as_pathname().map(PathBuf::from))
                        {
                            let _ = UnixStream::connect(path);
                        }
                    }
                }
                break;
            }
        }
        Ok(())
    })();
    // Closing our sender ends the writer once in-flight shard jobs have
    // delivered their replies (each holds its own sender clone).
    drop(tx);
    let _ = writer.join();
    result
}

/// Writer-thread body: handshake first, then responses as they arrive,
/// flushing whenever the channel runs dry so pipelined bursts coalesce
/// into few writes.
fn write_handshake_and_drain(
    w: &mut BufWriter<Conn>,
    corpora: u32,
    rx: &std::sync::mpsc::Receiver<(u64, Response)>,
) -> io::Result<()> {
    write_handshake(w, corpora)?;
    w.flush()?;
    while let Ok((id, response)) = rx.recv() {
        inject("server.conn.write")?;
        write_response(w, id, &response)?;
        loop {
            match rx.try_recv() {
                Ok((id, response)) => write_response(w, id, &response)?,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    w.flush()?;
                    return Ok(());
                }
            }
        }
        w.flush()?;
    }
    w.flush()
}
