//! Snapshot-serving query service over BATMAP corpora.
//!
//! Everything before this crate answered queries by re-running a batch
//! binary; this is the long-running half of the paper's pitch — the
//! batmap layout exists to make set-intersection counting fast enough
//! to *serve*. The service loads one or more preprocessed corpora
//! ([`pairminer::Preprocessed`] snapshots), shards their sets across
//! worker threads by a deterministic set-id range map, and answers
//! concurrent queries over a length-prefixed binary protocol on a TCP
//! or Unix socket — std-only, no async runtime.
//!
//! The pipeline, stage by stage:
//!
//! 1. **Wire protocol** ([`proto`]) — typed [`Request`]/[`Response`]
//!    enums with a versioned little-endian encoding, shared verbatim by
//!    the [`client`] module and the bench load generator (one encoder,
//!    no drift).
//! 2. **Shard map** ([`shard`]) — contiguous, deterministic ranges of
//!    sorted set positions, one range per worker. Contiguity matters:
//!    a shard's candidates are a dense run of the width-sorted arena,
//!    exactly the access pattern the one-vs-many sweeps like.
//! 3. **Admission queues** ([`engine`]) — each shard worker owns a
//!    queue; a drain takes *everything* pending and coalesces count
//!    probes against the same set into one
//!    [`batmap::intersect::count_mixed_one_vs_many_into`] sweep, so the
//!    probe's fingerprint check happens once and its slot bytes stay
//!    hot in registers across candidates. Under concurrent load this
//!    is the headline mechanism: batched throughput *exceeds*
//!    one-query-at-a-time QPS (the `serve_qps` perf scenario asserts
//!    it).
//! 4. **Exactness** — stored payloads under-count when cuckoo
//!    insertions failed at preprocessing time; every query path applies
//!    the same failed-element corrections the mining pipeline uses, so
//!    served counts equal brute force exactly, whatever the storage
//!    representation.
//! 5. **Failure containment** — per-connection read/write deadlines
//!    with idle eviction ([`server::ServerConfig`]), bounded admission
//!    queues that shed with a typed [`Response::Overloaded`] instead of
//!    growing without limit, shard workers whose panics are contained
//!    (`catch_unwind`), answered with typed errors, and survived via a
//!    supervisor restart, and a reconnecting, retrying [`Client`]. The
//!    invariant, pinned by the chaos suite under injected faults
//!    (`BATMAP_FAULTPOINTS`): every *delivered* answer is exact; the
//!    server always shuts down cleanly.
//!
//! ```no_run
//! use batmap_server::{EngineConfig, QueryEngine, Server};
//!
//! # fn main() -> std::io::Result<()> {
//! # let corpus: pairminer::Preprocessed = unimplemented!();
//! let engine = QueryEngine::new(vec![corpus], EngineConfig::default());
//! let handle = Server::bind_tcp("127.0.0.1:0")?.serve(engine);
//! println!("serving on {}", handle.tcp_addr().unwrap());
//! handle.join();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod proto;
pub mod server;
pub mod shard;

pub use client::{Client, RetryPolicy};
pub use engine::{EngineConfig, QueryEngine};
pub use proto::{
    CorpusInfo, ItemsetEntry, LevelSummary, MineSummary, Probe, ProtoError, Request, Response,
};
pub use server::{Server, ServerConfig, ServerHandle};
pub use shard::ShardMap;
