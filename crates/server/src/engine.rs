//! The sharded, batching query engine behind the socket server.
//!
//! One engine owns one or more **live** corpora: each is a
//! [`pairminer::LayeredCorpus`] — an immutable preprocessed base plus a
//! mutable delta region — behind one `RwLock`. Read queries take the
//! lock shared; writes ([`Request::Insert`] / [`Request::Remove`]) and
//! compaction ([`Request::Flush`]) take it exclusive, apply, and
//! release — writes are synchronous on the submitting connection
//! thread, so they interleave with batched reads at lock granularity.
//!
//! Each corpus' sets are carved into contiguous shards
//! ([`crate::shard::ShardMap`]) **by original item id** — item ids
//! never change, so shard ownership is stable across compactions even
//! though the width-sorted arena order permutes. Each shard gets a
//! dedicated worker thread with an **admission queue** (mutex + condvar
//! around a deque). A worker drains *everything* pending in one lock
//! acquisition, takes one shared corpus guard for the whole batch (so
//! every answer in a batch reflects a single corpus version), and then
//! coalesces: count probes against the same probe set become one
//! [`batmap::intersect::count_mixed_one_vs_many_into`] sweep, so the
//! probe's universe check happens once and its payload stays hot across
//! candidates — the same register-blocking economics the tile executors
//! exploit, applied to ad-hoc queries. Top-k probes scatter to every
//! shard and gather through an atomic countdown; the last shard to
//! finish merges and replies.
//!
//! Counts are **exact**: raw sweeps over stored payloads are corrected
//! for failed cuckoo insertions *and* for the live delta
//! ([`pairminer::LayeredCorpus::corrected`]) — served answers equal
//! brute force over the live transaction multiset, whatever the storage
//! representation and however many un-compacted writes are pending.
//! Compaction never changes any answer.
//!
//! Every reply is a pure function of the request and the corpus version
//! it ran against, and tie-breaking in top-k is total (count
//! descending, then set id ascending), so any interleaving of
//! concurrent clients — with writes fenced at phase boundaries —
//! produces byte-identical responses to a single-threaded replay;
//! pinned by `tests/serve_replay.rs`.

use crate::proto::{CorpusInfo, ItemsetEntry, LevelSummary, MineSummary, Probe, Request, Response};
use crate::shard::ShardMap;
use batmap::intersect::count_mixed_one_vs_many_into;
use batmap::{EngineOptions, SetView, TidlistRef};
use hpcutil::{fault_point, lock_recover, read_recover, wait_recover, write_recover};
use pairminer::{Engine, LayeredCorpus, LevelwiseConfig, MinerConfig, Preprocessed};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

/// Engine configuration. `Default` serves with one shard per core,
/// batching on, and every tuning knob at `Auto`.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The engine tuning knobs. The `threads` knob governs mining jobs
    /// (and anything else that fans out inside one request); the
    /// `kernel`/`repr` knobs of the *corpus* were pinned at
    /// preprocessing time and travel inside the snapshot's parameters,
    /// so sweeps dispatch through those.
    pub options: EngineOptions,
    /// Shard workers per corpus; `0` means one per available core.
    pub shards: usize,
    /// Admission-queue batching: when true (the default), a worker
    /// coalesces all drained count probes sharing a probe set into one
    /// one-vs-many sweep; when false every query runs pairwise, which
    /// is what the `serve_qps` scenario's unbatched arm measures.
    pub batching: bool,
    /// Cap on itemsets returned by one [`Request::Mine`] (the summary
    /// notes truncation).
    pub mine_itemset_cap: usize,
    /// Cap on jobs queued per shard. A submission that would push a
    /// shard queue past this is **shed**: the query is not executed and
    /// the client receives [`Response::Overloaded`] (retry after
    /// backing off). `0` means unbounded — the pre-hardening behavior,
    /// where a sustained overload grows the queue without limit.
    pub max_queue_depth: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            options: EngineOptions::auto(),
            shards: 0,
            batching: true,
            mine_itemset_cap: 4096,
            // Generous: at serving rates this only sheds when the
            // engine is genuinely drowning, not on bursts the batching
            // sweeps can absorb.
            max_queue_depth: 65_536,
        }
    }
}

/// A reply channel: `(request id, response)` pairs, consumed by the
/// connection's writer thread (or a transient channel for
/// [`QueryEngine::query`]).
pub type Reply = Sender<(u64, Response)>;

/// One served corpus: the live layered state behind its lock, plus the
/// routing facts that never change (the item-id universe and the shard
/// map over it — both fixed at construction, so request routing and
/// validation never need the lock).
struct Corpus {
    state: RwLock<LayeredCorpus>,
    shard_map: ShardMap,
    /// Vocabulary size; immutable (writes reuse the fixed item space).
    n_items: u32,
    /// Transaction-slot universe; immutable (compaction preserves it).
    m: u64,
}

impl Corpus {
    fn new(pre: Preprocessed, shards: usize) -> Self {
        let n_items = pre.n_items;
        let m = pre.params.m();
        // Any seed yields identical counts; deriving it from the
        // params keeps compaction rebuilds deterministic per corpus.
        let seed = pre.params.fingerprint();
        let shard_map = ShardMap::new(n_items, shards);
        Corpus {
            state: RwLock::new(LayeredCorpus::from_preprocessed(pre, seed)),
            shard_map,
            n_items,
            m,
        }
    }
}

/// The probe side of an in-flight top-k job.
enum ProbeData {
    /// A stored set, by original item id (resolved to its current
    /// sorted position under each shard's batch guard).
    Set(u32),
    /// Validated ad-hoc elements: strictly ascending, in-universe. The
    /// bytes are the little-endian tidlist encoding each shard borrows
    /// as a [`TidlistRef`].
    Elements { elements: Vec<u32>, bytes: Vec<u8> },
}

/// One top-k query scattered across all shards of a corpus.
struct TopKJob {
    id: u64,
    corpus: usize,
    probe: ProbeData,
    k: usize,
    /// Shards yet to finish; the worker that takes this to zero merges
    /// the partials and replies.
    remaining: AtomicUsize,
    /// Set (Release) by any shard whose partial computation panicked,
    /// before that shard's countdown decrement (AcqRel): the merging
    /// shard is guaranteed to observe it and answer with a typed error
    /// instead of delivering a partial — possibly wrong — top-k.
    failed: AtomicBool,
    partials: Mutex<Vec<(u32, u64)>>,
    reply: Reply,
}

/// One unit of shard work. Sets travel as **original item ids** — the
/// only names that stay valid however many compactions land between
/// submission and execution.
enum Job {
    Count {
        id: u64,
        /// Probe item id (batching groups on this).
        a: u32,
        /// Candidate item id (this shard owns it).
        b: u32,
        reply: Reply,
    },
    Member {
        id: u64,
        set: u32,
        element: u32,
        reply: Reply,
    },
    TopK(Arc<TopKJob>),
}

struct ShardQueue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
}

struct Inner {
    corpora: Vec<Corpus>,
    config: EngineConfig,
    /// Flattened shard queues: corpus `c`'s shard `s` lives at
    /// `queue_base[c] + s`.
    queues: Vec<ShardQueue>,
    queue_base: Vec<usize>,
    stop: AtomicBool,
    /// Worker panics survived: each one is a supervisor restart from
    /// the shared corpus state (exposed for chaos-test assertions).
    worker_restarts: AtomicUsize,
}

/// The sharded query engine. Construct with [`QueryEngine::new`], share
/// behind an [`Arc`], and either [`QueryEngine::submit`] with a reply
/// channel (the server's path) or ask synchronously with
/// [`QueryEngine::query`]. Dropping the engine stops and joins its
/// workers.
pub struct QueryEngine {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryEngine {
    /// Spin up shard workers for `corpora` under `config`.
    ///
    /// # Panics
    /// Panics if `corpora` is empty.
    pub fn new(corpora: Vec<Preprocessed>, config: EngineConfig) -> QueryEngine {
        assert!(!corpora.is_empty(), "an engine needs at least one corpus");
        let shards = if config.shards == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.shards
        };
        let corpora: Vec<Corpus> = corpora
            .into_iter()
            .map(|p| Corpus::new(p, shards))
            .collect();
        let mut queues = Vec::new();
        let mut queue_base = Vec::new();
        for corpus in &corpora {
            queue_base.push(queues.len());
            for _ in 0..corpus.shard_map.shards() {
                queues.push(ShardQueue {
                    jobs: Mutex::new(VecDeque::new()),
                    available: Condvar::new(),
                });
            }
        }
        let inner = Arc::new(Inner {
            corpora,
            config,
            queues,
            queue_base,
            stop: AtomicBool::new(false),
            worker_restarts: AtomicUsize::new(0),
        });
        let mut workers = Vec::new();
        for c in 0..inner.corpora.len() {
            for s in 0..inner.corpora[c].shard_map.shards() {
                let inner = Arc::clone(&inner);
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("batmap-shard-{c}-{s}"))
                        .spawn(move || worker_loop(&inner, c, s))
                        .expect("spawn shard worker"),
                );
            }
        }
        QueryEngine { inner, workers }
    }

    /// Open corpus snapshot files and spin up an engine over them,
    /// honouring the [`EngineOptions::load`] knob in `config.options`
    /// (`--load mmap` / `BATMAP_LOAD=mmap` serves a cold corpus
    /// zero-copy: the payload pages fault in on first query instead of
    /// being read and checksummed up front; run
    /// [`pairminer::Preprocessed::verify`] out of band if end-to-end
    /// payload integrity checking is wanted).
    ///
    /// # Panics
    /// Panics if `paths` is empty (an engine needs at least one corpus).
    pub fn open_snapshots<P: AsRef<std::path::Path>>(
        paths: &[P],
        config: EngineConfig,
    ) -> Result<QueryEngine, batmap::SnapshotError> {
        let corpora = paths
            .iter()
            .map(|p| Preprocessed::read_snapshot_file_with(p, config.options.load))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(QueryEngine::new(corpora, config))
    }

    /// Number of corpora served.
    pub fn corpora(&self) -> u32 {
        self.inner.corpora.len() as u32
    }

    /// How many shard-worker panics the supervisor has absorbed (each
    /// one restarted the worker from the shared corpus state).
    pub fn worker_restarts(&self) -> usize {
        self.inner.worker_restarts.load(Ordering::Relaxed)
    }

    /// Submit one request; the response is delivered as `(id, response)`
    /// on `reply`, possibly out of order relative to other submissions.
    /// Mining, metadata, and **write** requests run synchronously on the
    /// calling thread (writes take the corpus lock exclusively);
    /// count/membership/top-k requests go through the shard queues.
    pub fn submit(&self, corpus: u32, id: u64, request: Request, reply: &Reply) {
        let inner = &self.inner;
        let Some(corp) = inner.corpora.get(corpus as usize) else {
            send(reply, id, Response::Error(format!("no corpus {corpus}")));
            return;
        };
        let n = corp.n_items;
        match request {
            Request::Count { a, b } => {
                if a >= n || b >= n {
                    send(reply, id, bad_set(a.max(b), n));
                    return;
                }
                if !self.enqueue(
                    corpus as usize,
                    corp.shard_map.shard_of(b),
                    Job::Count {
                        id,
                        a,
                        b,
                        reply: reply.clone(),
                    },
                ) {
                    send(reply, id, Response::Overloaded);
                }
            }
            Request::Member { set, element } => {
                if set >= n {
                    send(reply, id, bad_set(set, n));
                    return;
                }
                if !self.enqueue(
                    corpus as usize,
                    corp.shard_map.shard_of(set),
                    Job::Member {
                        id,
                        set,
                        element,
                        reply: reply.clone(),
                    },
                ) {
                    send(reply, id, Response::Overloaded);
                }
            }
            Request::TopK { probe, k } => {
                let probe = match probe {
                    Probe::Set(set) => {
                        if set >= n {
                            send(reply, id, bad_set(set, n));
                            return;
                        }
                        ProbeData::Set(set)
                    }
                    Probe::Elements(elements) => {
                        let ascending = elements.windows(2).all(|w| w[0] < w[1]);
                        let in_universe = elements.last().is_none_or(|&x| (x as u64) < corp.m);
                        if !ascending || !in_universe {
                            send(
                                reply,
                                id,
                                Response::Error(
                                    "probe elements must be strictly ascending and < m".into(),
                                ),
                            );
                            return;
                        }
                        let mut bytes = vec![0u8; 4 * elements.len()];
                        batmap::repr::encode_tidlist_into(&elements, &mut bytes);
                        ProbeData::Elements { elements, bytes }
                    }
                };
                let shards = corp.shard_map.shards();
                // A top-k job scatters to every shard and completes via
                // an all-shards countdown, so it must be admitted whole
                // or not at all: shed up front if any target queue is
                // at capacity (the check is advisory — concurrent
                // submitters can briefly over-admit, which a soft depth
                // cap tolerates).
                if (0..shards).any(|s| self.at_capacity(corpus as usize, s)) {
                    send(reply, id, Response::Overloaded);
                    return;
                }
                let job = Arc::new(TopKJob {
                    id,
                    corpus: corpus as usize,
                    probe,
                    k: k as usize,
                    remaining: AtomicUsize::new(shards as usize),
                    failed: AtomicBool::new(false),
                    partials: Mutex::new(Vec::new()),
                    reply: reply.clone(),
                });
                for shard in 0..shards {
                    self.enqueue_unbounded(corpus as usize, shard, Job::TopK(Arc::clone(&job)));
                }
            }
            Request::Insert { tid, items } => {
                // The fine-grained validation (slot collisions, item
                // order, universe bounds) lives in the corpus so it is
                // identical for every caller; `ingest.apply` faults
                // surface here as typed errors with the state untouched.
                let outcome = write_recover(&corp.state).insert_txn(tid, &items);
                send(
                    reply,
                    id,
                    match outcome {
                        Ok(changed) => Response::Applied(changed),
                        Err(e) => Response::Error(e.to_string()),
                    },
                );
            }
            Request::Remove { tid } => {
                let outcome = write_recover(&corp.state).remove_txn(tid);
                send(
                    reply,
                    id,
                    match outcome {
                        Ok(changed) => Response::Applied(changed),
                        Err(e) => Response::Error(e.to_string()),
                    },
                );
            }
            Request::Flush => {
                let mut state = write_recover(&corp.state);
                let folded = state.delta_memberships();
                send(
                    reply,
                    id,
                    match state.compact() {
                        Ok(()) => Response::Flushed(folded),
                        Err(e) => Response::Error(e.to_string()),
                    },
                );
            }
            Request::Mine { depth, minsup } => {
                send(reply, id, self.mine(corp, depth, minsup));
            }
            Request::Info => {
                let state = read_recover(&corp.state);
                let hist = state.pre().repr_histogram();
                send(
                    reply,
                    id,
                    Response::Info(CorpusInfo {
                        sets: n,
                        m: corp.m,
                        repr_histogram: [hist[0] as u64, hist[1] as u64, hist[2] as u64],
                        failed: state.pre().failed.len() as u64,
                        shards: corp.shard_map.shards(),
                    }),
                );
            }
            Request::Shutdown => {
                // The engine itself has nothing to tear down per
                // request; the server layer watches for Bye to stop
                // accepting.
                send(reply, id, Response::Bye);
            }
        }
    }

    /// Synchronous convenience: submit and wait for the one response.
    pub fn query(&self, corpus: u32, request: Request) -> Response {
        let (tx, rx) = std::sync::mpsc::channel();
        self.submit(corpus, 0, request, &tx);
        drop(tx);
        rx.recv().map(|(_, resp)| resp).unwrap_or_else(|_| {
            Response::Error("engine dropped the request (shutting down?)".into())
        })
    }

    /// Queue one job, or refuse it (returning `false`) when the shard
    /// queue is at [`EngineConfig::max_queue_depth`] — the caller sheds
    /// with [`Response::Overloaded`].
    fn enqueue(&self, corpus: usize, shard: u32, job: Job) -> bool {
        let queue = &self.inner.queues[self.inner.queue_base[corpus] + shard as usize];
        let depth = self.inner.config.max_queue_depth;
        {
            let mut jobs = lock_recover(&queue.jobs);
            if depth != 0 && jobs.len() >= depth {
                return false;
            }
            jobs.push_back(job);
        }
        queue.available.notify_one();
        true
    }

    /// Queue one job past the depth cap (top-k scatter legs, which are
    /// admitted or shed as a whole before this point).
    fn enqueue_unbounded(&self, corpus: usize, shard: u32, job: Job) {
        let queue = &self.inner.queues[self.inner.queue_base[corpus] + shard as usize];
        lock_recover(&queue.jobs).push_back(job);
        queue.available.notify_one();
    }

    /// True when a shard queue is at its depth cap.
    fn at_capacity(&self, corpus: usize, shard: u32) -> bool {
        let depth = self.inner.config.max_queue_depth;
        if depth == 0 {
            return false;
        }
        let queue = &self.inner.queues[self.inner.queue_base[corpus] + shard as usize];
        lock_recover(&queue.jobs).len() >= depth
    }

    fn mine(&self, corp: &Corpus, depth: u32, minsup: u64) -> Response {
        if !(2..=15).contains(&depth) {
            return Response::Error(format!("mining depth must be in 2..=15, got {depth}"));
        }
        let config = LevelwiseConfig {
            depth: depth as usize,
            pair: MinerConfig {
                minsup: minsup.max(1),
                engine: Engine::Cpu,
                options: self.inner.config.options,
                ..MinerConfig::default()
            },
            ..LevelwiseConfig::default()
        };
        // Exclusive: mining compacts pending deltas first (so level 2
        // runs the tiled pipeline over a clean arena) and must not race
        // writes. Readers drain before the lock grants.
        let mut state = write_recover(&corp.state);
        let report = match state.mine(config) {
            Ok(report) => report,
            Err(e) => return Response::Error(e.to_string()),
        };
        let cap = self.inner.config.mine_itemset_cap;
        let truncated = report.itemsets.len() > cap;
        Response::Mined(MineSummary {
            levels: report
                .levels
                .iter()
                .map(|l| LevelSummary {
                    k: l.k as u32,
                    candidates: l.candidates as u64,
                    frequent: l.frequent as u64,
                })
                .collect(),
            itemsets: report
                .itemsets
                .iter()
                .take(cap)
                .map(|s| ItemsetEntry {
                    items: s.items.clone(),
                    support: s.support,
                })
                .collect(),
            truncated,
        })
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        for queue in &self.inner.queues {
            // Take the lock so no worker can check the flag between its
            // emptiness test and its wait.
            let _guard = lock_recover(&queue.jobs);
            queue.available.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn send(reply: &Reply, id: u64, response: Response) {
    // A dropped receiver means the connection is gone; the answer has
    // nowhere to go and that is fine.
    let _ = reply.send((id, response));
}

fn bad_set(set: u32, n: u32) -> Response {
    Response::Error(format!("no set {set} (corpus has {n})"))
}

// ---------------------------------------------------------------------
// Shard workers.

/// The supervisor: run the worker body, and if it ever escapes with a
/// panic — a bug in a kernel sweep, a poisoned invariant, or an
/// injected `engine.worker.batch` fault — answer what can still be
/// answered, count the restart, and start the body again over the same
/// shared corpus state (readers only ever hold the lock shared, so a
/// panicked batch cannot have damaged it).
fn worker_loop(inner: &Inner, corpus: usize, shard: u32) {
    loop {
        if catch_unwind(AssertUnwindSafe(|| worker_run(inner, corpus, shard))).is_ok() {
            return; // clean stop-flag exit
        }
        inner.worker_restarts.fetch_add(1, Ordering::Relaxed);
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn worker_run(inner: &Inner, corpus: usize, shard: u32) {
    let queue = &inner.queues[inner.queue_base[corpus] + shard as usize];
    let corp = &inner.corpora[corpus];
    let mut batch: Vec<Job> = Vec::new();
    let mut done: Vec<bool> = Vec::new();
    loop {
        {
            let mut jobs = lock_recover(&queue.jobs);
            while jobs.is_empty() && !inner.stop.load(Ordering::SeqCst) {
                jobs = wait_recover(&queue.available, jobs);
            }
            if jobs.is_empty() {
                return; // stop requested, queue drained
            }
            // The whole point: take everything pending in one go so the
            // batch below can coalesce across requests.
            batch.extend(jobs.drain(..));
        }
        // Contain panics to the batch: jobs not yet answered when the
        // batch blew up get a typed error (and top-k countdowns their
        // guaranteed decrement), so no client ever hangs on a panicked
        // worker — then the worker keeps serving the next batch.
        done.clear();
        done.resize(batch.len(), false);
        if catch_unwind(AssertUnwindSafe(|| {
            process_batch(inner, corp, shard, &batch, &mut done)
        }))
        .is_err()
        {
            inner.worker_restarts.fetch_add(1, Ordering::Relaxed);
            for (job, &answered) in batch.iter().zip(done.iter()) {
                if answered {
                    continue;
                }
                match job {
                    Job::Count { id, reply, .. } | Job::Member { id, reply, .. } => send(
                        reply,
                        *id,
                        Response::Error("internal error: shard worker panicked".into()),
                    ),
                    Job::TopK(job) => {
                        job.failed.store(true, Ordering::Release);
                        finish_topk(job);
                    }
                }
            }
        }
        batch.clear();
    }
}

fn process_batch(inner: &Inner, corp: &Corpus, shard: u32, batch: &[Job], done: &mut [bool]) {
    // Panic/delay injection for the containment machinery above; fires
    // before any reply so a contained batch answers every job exactly
    // once.
    fault_point!("engine.worker.batch");
    // One shared guard for the whole batch: every job in it is answered
    // against a single corpus version, and writes (exclusive) serialize
    // at batch boundaries.
    let state = read_recover(&corp.state);
    // Membership and top-k first (cheap / already swept), then counts —
    // grouped by probe when batching is on.
    let mut count_jobs: Vec<(usize, u64, u32, u32, &Reply)> = Vec::new();
    for (i, job) in batch.iter().enumerate() {
        match job {
            Job::Member {
                id,
                set,
                element,
                reply,
            } => {
                send(reply, *id, Response::Member(state.member(*set, *element)));
                done[i] = true;
            }
            Job::TopK(job) => {
                // Compute the partial inside the batch's catch scope;
                // the countdown below runs whether or not a later job
                // panics, because `done` is only set after it.
                let local = topk_shard_partial(corp, &state, shard, job);
                if !local.is_empty() {
                    lock_recover(&job.partials).extend(local);
                }
                finish_topk(job);
                done[i] = true;
            }
            Job::Count { id, a, b, reply } => count_jobs.push((i, *id, *a, *b, reply)),
        }
    }
    if count_jobs.is_empty() {
        return;
    }
    if !inner.config.batching {
        for (i, id, a, b, reply) in count_jobs {
            send(reply, id, Response::Count(state.pair_count(a, b)));
            done[i] = true;
        }
        return;
    }
    // Coalesce: all drained counts sharing a probe become one
    // one-vs-many sweep (BTreeMap for deterministic group order).
    let mut by_probe: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (j, &(_, _, a, _, _)) in count_jobs.iter().enumerate() {
        by_probe.entry(a).or_default().push(j);
    }
    let item_to_sorted = &state.pre().item_to_sorted;
    let mut counts = vec![0u64; count_jobs.len()];
    for (&a, group) in &by_probe {
        if group.len() == 1 {
            let (_, _, _, b, _) = count_jobs[group[0]];
            counts[group[0]] = state.pair_count(a, b);
            continue;
        }
        let sa = item_to_sorted[a as usize] as usize;
        let probe = state.payload(sa);
        let positions: Vec<usize> = group
            .iter()
            .map(|&j| item_to_sorted[count_jobs[j].3 as usize] as usize)
            .collect();
        let candidates: Vec<SetView<'_>> = positions.iter().map(|&sb| state.payload(sb)).collect();
        let mut out = vec![0u64; group.len()];
        count_mixed_one_vs_many_into(&probe, &candidates, &mut out);
        for ((&j, &sb), raw) in group.iter().zip(&positions).zip(out) {
            counts[j] = state.corrected(raw, sa, sb);
        }
    }
    for ((i, id, _, _, reply), count) in count_jobs.into_iter().zip(counts) {
        send(reply, id, Response::Count(count));
        done[i] = true;
    }
}

/// The terminal countdown of one shard's leg of a top-k job: exactly
/// one call per shard per job, whatever happened to the partial
/// computation. The shard that takes `remaining` to zero merges and
/// replies — or, when any leg recorded a panic, answers with a typed
/// error so the client never receives a partial top-k.
fn finish_topk(job: &Arc<TopKJob>) {
    if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        if job.failed.load(Ordering::Acquire) {
            send(
                &job.reply,
                job.id,
                Response::Error("internal error: top-k shard worker panicked".into()),
            );
            return;
        }
        // Last shard standing merges. The full sort has a total order
        // (count descending, id ascending; ids are unique), so the
        // result is independent of which shard got here last.
        let mut hits = std::mem::take(&mut *lock_recover(&job.partials));
        hits.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hits.truncate(job.k);
        send(&job.reply, job.id, Response::TopK(hits));
        let _ = job.corpus; // routing metadata; kept for debuggability
    }
}

/// One shard's top-k partial: pure compute, no countdown, no reply (so
/// a panic in here is recoverable by the caller). The shard's item-id
/// range is resolved to sorted positions under the caller's batch
/// guard; partials carry item ids directly, so the merge needs no
/// further translation — and stays exact across compactions, which
/// never change any live count.
fn topk_shard_partial(
    corp: &Corpus,
    state: &LayeredCorpus,
    shard: u32,
    job: &Arc<TopKJob>,
) -> Vec<(u32, u64)> {
    fault_point!("engine.topk.shard");
    let range = corp.shard_map.range(shard);
    let mut local: Vec<(u32, u64)> = Vec::new();
    if range.is_empty() {
        return local;
    }
    let item_to_sorted = &state.pre().item_to_sorted;
    let positions: Vec<usize> = range
        .clone()
        .map(|item| item_to_sorted[item as usize] as usize)
        .collect();
    let candidates: Vec<SetView<'_>> = positions.iter().map(|&s| state.payload(s)).collect();
    let mut out = vec![0u64; candidates.len()];
    let self_item = match &job.probe {
        ProbeData::Set(item) => {
            let sp = item_to_sorted[*item as usize] as usize;
            let view = state.payload(sp);
            count_mixed_one_vs_many_into(&view, &candidates, &mut out);
            // Corrections (failed insertions + live delta) per
            // candidate; each is O(|failures| + |delta|), almost
            // always a handful of probes on empty lists.
            for (raw, &sb) in out.iter_mut().zip(&positions) {
                *raw = state.corrected(*raw, sp, sb);
            }
            Some(*item)
        }
        ProbeData::Elements { elements, bytes } => {
            let view = SetView::Tidlist(TidlistRef::from_bytes(&state.pre().params, bytes));
            count_mixed_one_vs_many_into(&view, &candidates, &mut out);
            for (raw, &sb) in out.iter_mut().zip(&positions) {
                *raw = state.corrected_adhoc(*raw, elements, sb);
            }
            None
        }
    };
    for (item, count) in range.zip(out) {
        if count == 0 || Some(item) == self_item {
            continue;
        }
        local.push((item, count));
    }
    local
}
