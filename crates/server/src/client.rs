//! A blocking client for the query service.
//!
//! Speaks the same [`crate::proto`] encoding the server does — one
//! encoder, no drift — over TCP or a Unix socket. Requests carry
//! client-chosen ids and responses may come back out of order (shards
//! finish at different times), so the client stashes strays until their
//! turn; [`Client::pipeline`] exploits that by writing a whole batch
//! before reading anything, which is what fills the server's admission
//! queues deeply enough for its sweeps to coalesce. The bench load
//! generator drives servers through exactly this type.
//!
//! Transport failures are survivable: the client remembers its connect
//! target, and under a [`RetryPolicy`] a dropped connection triggers
//! reconnect-with-exponential-backoff (plus deterministic jitter) and a
//! bounded number of re-issues. Every current request type is
//! idempotent — counts, membership, top-k, mining, and metadata are
//! pure functions of the corpus — so re-issuing after an ambiguous
//! failure cannot double-apply anything. [`Client::pipeline_outcomes`]
//! reports per-request results instead of failing a whole batch on the
//! first bad frame.

use crate::proto::{
    read_handshake, read_response, write_request, CorpusInfo, MineSummary, Probe, Request, Response,
};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// Bounded-retry policy for transport failures (connection drops,
/// resets, timeouts — never protocol or server-side errors). Backoff
/// for attempt `n` is `base_backoff · 2ⁿ` capped at `max_backoff`,
/// plus up to 50% deterministic jitter so a fleet of clients whose
/// server bounced does not reconnect in lockstep.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Re-issues after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// Fail fast: no reconnects, no re-issues (the pre-hardening
    /// behavior).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }
}

/// Where to reconnect after a dropped connection.
enum Target {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

/// True for transport-level failures where the request may simply be
/// re-issued on a fresh connection (all current request types are
/// idempotent). Protocol violations (`InvalidData`) and server-side
/// typed errors are never retried.
fn is_retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::NotConnected
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A connected client. One connection, blocking calls; open one client
/// per thread for concurrent load.
pub struct Client {
    reader: BufReader<Stream>,
    writer: BufWriter<Stream>,
    corpora: u32,
    next_id: u64,
    /// Responses that arrived before the id we were waiting on.
    stash: HashMap<u64, Response>,
    /// Remembered connect target, for reconnects after a drop.
    target: Target,
    retry: RetryPolicy,
    /// xorshift64 state for backoff jitter; seeded per-process so
    /// clients spawned together still spread their reconnects.
    jitter: u64,
}

impl Client {
    /// Connect over TCP and validate the server handshake.
    pub fn connect_tcp<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        Client::finish_connect(Stream::Tcp(stream), Target::Tcp(peer))
    }

    /// Connect over a Unix socket and validate the server handshake.
    #[cfg(unix)]
    pub fn connect_unix<P: AsRef<std::path::Path>>(path: P) -> io::Result<Client> {
        let path = path.as_ref().to_path_buf();
        let stream = UnixStream::connect(&path)?;
        Client::finish_connect(Stream::Unix(stream), Target::Unix(path))
    }

    fn finish_connect(stream: Stream, target: Target) -> io::Result<Client> {
        let write_half = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let corpora = read_handshake(&mut reader)?;
        let jitter = 0x9E37_79B9_7F4A_7C15 ^ u64::from(std::process::id());
        Ok(Client {
            reader,
            writer: BufWriter::new(write_half),
            corpora,
            next_id: 1,
            stash: HashMap::new(),
            target,
            retry: RetryPolicy::default(),
            jitter,
        })
    }

    /// Replace the retry policy (builder style). Use
    /// [`RetryPolicy::none`] to fail fast on the first transport error.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Client {
        self.retry = policy;
        self
    }

    /// Replace the retry policy in place.
    pub fn set_retry(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Number of corpora the server announced at handshake.
    pub fn corpora(&self) -> u32 {
        self.corpora
    }

    /// Tear down the dead connection and dial the remembered target
    /// again. Request ids keep counting up across reconnects so a
    /// stale frame from the old connection can never alias a new call;
    /// the stash is dropped because those responses belong to the dead
    /// connection.
    fn reconnect(&mut self) -> io::Result<()> {
        let stream = match &self.target {
            Target::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true)?;
                Stream::Tcp(s)
            }
            #[cfg(unix)]
            Target::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
        };
        let write_half = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        self.corpora = read_handshake(&mut reader)?;
        self.reader = reader;
        self.writer = BufWriter::new(write_half);
        self.stash.clear();
        Ok(())
    }

    /// Sleep `base · 2ᵃᵗᵗᵉᵐᵖᵗ` capped at `max_backoff`, plus up to 50%
    /// jitter from a deterministic xorshift64 step.
    fn backoff(&mut self, attempt: u32) {
        let base = self
            .retry
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16));
        let capped = base.min(self.retry.max_backoff);
        let mut x = self.jitter;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter = x;
        let jitter = capped.mul_f64((x % 100) as f64 / 200.0);
        std::thread::sleep(capped + jitter);
    }

    /// Send one request and wait for its response, reconnecting and
    /// re-issuing on transport failure up to the retry policy's bound.
    /// Safe because every request type is idempotent; server-side typed
    /// errors and protocol violations are returned immediately, never
    /// retried.
    pub fn call(&mut self, corpus: u32, request: &Request) -> io::Result<Response> {
        let mut attempt = 0u32;
        loop {
            match self.call_once(corpus, request) {
                Err(e) if attempt < self.retry.max_retries && is_retryable(&e) => {
                    self.backoff(attempt);
                    attempt += 1;
                    // A failed redial leaves the dead stream in place;
                    // the next call_once fails fast and we land back
                    // here until attempts run out.
                    let _ = self.reconnect();
                }
                other => return other,
            }
        }
    }

    fn call_once(&mut self, corpus: u32, request: &Request) -> io::Result<Response> {
        let id = self.send(corpus, request)?;
        self.writer.flush()?;
        self.wait_for(id)
    }

    /// Send a batch of requests back-to-back, then collect all
    /// responses, returned in request order however they arrived. Deep
    /// pipelines are what let the server's shard workers coalesce.
    /// Fails the whole batch on the first transport error; use
    /// [`Client::pipeline_outcomes`] to keep the answers that did
    /// arrive.
    pub fn pipeline(&mut self, corpus: u32, requests: &[Request]) -> io::Result<Vec<Response>> {
        let ids: Vec<u64> = requests
            .iter()
            .map(|req| self.send(corpus, req))
            .collect::<io::Result<_>>()?;
        self.writer.flush()?;
        ids.into_iter().map(|id| self.wait_for(id)).collect()
    }

    /// Pipelined batch with per-request outcomes: one bad frame no
    /// longer poisons the batch. A first pipelined pass collects what
    /// it can; requests that failed at the transport level are then
    /// re-issued one at a time through [`Client::call`] (which
    /// reconnects under the retry policy). Entries are in request
    /// order.
    pub fn pipeline_outcomes(
        &mut self,
        corpus: u32,
        requests: &[Request],
    ) -> Vec<io::Result<Response>> {
        let mut out: Vec<Option<io::Result<Response>>> = requests.iter().map(|_| None).collect();
        let ids: Vec<io::Result<u64>> = requests.iter().map(|req| self.send(corpus, req)).collect();
        let flushed = self.writer.flush();
        if flushed.is_ok() {
            for (slot, id) in out.iter_mut().zip(&ids) {
                if let Ok(id) = id {
                    *slot = Some(self.wait_for(*id));
                }
            }
        }
        for (i, slot) in out.iter_mut().enumerate() {
            let redo = match slot {
                None => true,
                Some(Err(e)) => is_retryable(e),
                Some(Ok(_)) => false,
            };
            if redo {
                *slot = Some(self.call(corpus, &requests[i]));
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every slot filled"))
            .collect()
    }

    fn send(&mut self, corpus: u32, request: &Request) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_request(&mut self.writer, id, corpus, request)?;
        Ok(id)
    }

    fn wait_for(&mut self, id: u64) -> io::Result<Response> {
        if let Some(response) = self.stash.remove(&id) {
            return Ok(response);
        }
        loop {
            let Some((got, response)) = read_response(&mut self.reader)? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-call",
                ));
            };
            if got == id {
                return Ok(response);
            }
            self.stash.insert(got, response);
        }
    }

    // Typed conveniences. Each maps `Response::Error` onto an
    // `io::Error` so callers get `?`-able results.

    /// Exact `|a ∩ b|` of two stored sets.
    pub fn count(&mut self, corpus: u32, a: u32, b: u32) -> io::Result<u64> {
        match self.call(corpus, &Request::Count { a, b })? {
            Response::Count(n) => Ok(n),
            other => Err(unexpected(&other)),
        }
    }

    /// Does stored set `set` contain `element`?
    pub fn member(&mut self, corpus: u32, set: u32, element: u32) -> io::Result<bool> {
        match self.call(corpus, &Request::Member { set, element })? {
            Response::Member(present) => Ok(present),
            other => Err(unexpected(&other)),
        }
    }

    /// The `k` stored sets most similar to `probe`, as `(set id,
    /// count)` with count descending then id ascending.
    pub fn top_k(&mut self, corpus: u32, probe: Probe, k: u32) -> io::Result<Vec<(u32, u64)>> {
        match self.call(corpus, &Request::TopK { probe, k })? {
            Response::TopK(hits) => Ok(hits),
            other => Err(unexpected(&other)),
        }
    }

    /// Run the levelwise miner server-side and fetch the summary.
    pub fn mine(&mut self, corpus: u32, depth: u32, minsup: u64) -> io::Result<MineSummary> {
        match self.call(corpus, &Request::Mine { depth, minsup })? {
            Response::Mined(summary) => Ok(summary),
            other => Err(unexpected(&other)),
        }
    }

    /// Corpus metadata.
    pub fn info(&mut self, corpus: u32) -> io::Result<CorpusInfo> {
        match self.call(corpus, &Request::Info)? {
            Response::Info(info) => Ok(info),
            other => Err(unexpected(&other)),
        }
    }

    /// Fill free transaction slot `tid` with `items` (strictly
    /// ascending item ids); returns the memberships changed. The
    /// server's insert is **idempotent** — a retried duplicate after an
    /// ambiguous transport failure answers `Ok(0)` instead of failing —
    /// so this helper is safe under the client's retry policy.
    pub fn insert(&mut self, corpus: u32, tid: u32, items: &[u32]) -> io::Result<u64> {
        let request = Request::Insert {
            tid,
            items: items.to_vec(),
        };
        match self.call(corpus, &request)? {
            Response::Applied(changed) => Ok(changed),
            other => Err(unexpected(&other)),
        }
    }

    /// Clear live transaction slot `tid`; returns the memberships
    /// changed. Idempotent like [`Client::insert`] (removing a free
    /// slot answers `Ok(0)`), so retries are safe.
    pub fn remove(&mut self, corpus: u32, tid: u32) -> io::Result<u64> {
        match self.call(corpus, &Request::Remove { tid })? {
            Response::Applied(changed) => Ok(changed),
            other => Err(unexpected(&other)),
        }
    }

    /// Compact the corpus' pending deltas into a fresh base arena;
    /// returns the delta memberships folded in (`0` when already
    /// clean). Never changes any query answer.
    pub fn flush(&mut self, corpus: u32) -> io::Result<u64> {
        match self.call(corpus, &Request::Flush)? {
            Response::Flushed(folded) => Ok(folded),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to shut down; resolves once it acknowledges.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(0, &Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(response: &Response) -> io::Error {
    let what = match response {
        Response::Error(message) => format!("server error: {message}"),
        other => format!("unexpected response variant: {other:?}"),
    };
    io::Error::new(io::ErrorKind::InvalidData, what)
}
