//! A blocking client for the query service.
//!
//! Speaks the same [`crate::proto`] encoding the server does — one
//! encoder, no drift — over TCP or a Unix socket. Requests carry
//! client-chosen ids and responses may come back out of order (shards
//! finish at different times), so the client stashes strays until their
//! turn; [`Client::pipeline`] exploits that by writing a whole batch
//! before reading anything, which is what fills the server's admission
//! queues deeply enough for its sweeps to coalesce. The bench load
//! generator drives servers through exactly this type.

use crate::proto::{
    read_handshake, read_response, write_request, CorpusInfo, MineSummary, Probe, Request, Response,
};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A connected client. One connection, blocking calls; open one client
/// per thread for concurrent load.
pub struct Client {
    reader: BufReader<Stream>,
    writer: BufWriter<Stream>,
    corpora: u32,
    next_id: u64,
    /// Responses that arrived before the id we were waiting on.
    stash: HashMap<u64, Response>,
}

impl Client {
    /// Connect over TCP and validate the server handshake.
    pub fn connect_tcp<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Client::finish_connect(Stream::Tcp(stream))
    }

    /// Connect over a Unix socket and validate the server handshake.
    #[cfg(unix)]
    pub fn connect_unix<P: AsRef<std::path::Path>>(path: P) -> io::Result<Client> {
        Client::finish_connect(Stream::Unix(UnixStream::connect(path)?))
    }

    fn finish_connect(stream: Stream) -> io::Result<Client> {
        let write_half = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let corpora = read_handshake(&mut reader)?;
        Ok(Client {
            reader,
            writer: BufWriter::new(write_half),
            corpora,
            next_id: 1,
            stash: HashMap::new(),
        })
    }

    /// Number of corpora the server announced at handshake.
    pub fn corpora(&self) -> u32 {
        self.corpora
    }

    /// Send one request and wait for its response.
    pub fn call(&mut self, corpus: u32, request: &Request) -> io::Result<Response> {
        let id = self.send(corpus, request)?;
        self.writer.flush()?;
        self.wait_for(id)
    }

    /// Send a batch of requests back-to-back, then collect all
    /// responses, returned in request order however they arrived. Deep
    /// pipelines are what let the server's shard workers coalesce.
    pub fn pipeline(&mut self, corpus: u32, requests: &[Request]) -> io::Result<Vec<Response>> {
        let ids: Vec<u64> = requests
            .iter()
            .map(|req| self.send(corpus, req))
            .collect::<io::Result<_>>()?;
        self.writer.flush()?;
        ids.into_iter().map(|id| self.wait_for(id)).collect()
    }

    fn send(&mut self, corpus: u32, request: &Request) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_request(&mut self.writer, id, corpus, request)?;
        Ok(id)
    }

    fn wait_for(&mut self, id: u64) -> io::Result<Response> {
        if let Some(response) = self.stash.remove(&id) {
            return Ok(response);
        }
        loop {
            let Some((got, response)) = read_response(&mut self.reader)? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-call",
                ));
            };
            if got == id {
                return Ok(response);
            }
            self.stash.insert(got, response);
        }
    }

    // Typed conveniences. Each maps `Response::Error` onto an
    // `io::Error` so callers get `?`-able results.

    /// Exact `|a ∩ b|` of two stored sets.
    pub fn count(&mut self, corpus: u32, a: u32, b: u32) -> io::Result<u64> {
        match self.call(corpus, &Request::Count { a, b })? {
            Response::Count(n) => Ok(n),
            other => Err(unexpected(&other)),
        }
    }

    /// Does stored set `set` contain `element`?
    pub fn member(&mut self, corpus: u32, set: u32, element: u32) -> io::Result<bool> {
        match self.call(corpus, &Request::Member { set, element })? {
            Response::Member(present) => Ok(present),
            other => Err(unexpected(&other)),
        }
    }

    /// The `k` stored sets most similar to `probe`, as `(set id,
    /// count)` with count descending then id ascending.
    pub fn top_k(&mut self, corpus: u32, probe: Probe, k: u32) -> io::Result<Vec<(u32, u64)>> {
        match self.call(corpus, &Request::TopK { probe, k })? {
            Response::TopK(hits) => Ok(hits),
            other => Err(unexpected(&other)),
        }
    }

    /// Run the levelwise miner server-side and fetch the summary.
    pub fn mine(&mut self, corpus: u32, depth: u32, minsup: u64) -> io::Result<MineSummary> {
        match self.call(corpus, &Request::Mine { depth, minsup })? {
            Response::Mined(summary) => Ok(summary),
            other => Err(unexpected(&other)),
        }
    }

    /// Corpus metadata.
    pub fn info(&mut self, corpus: u32) -> io::Result<CorpusInfo> {
        match self.call(corpus, &Request::Info)? {
            Response::Info(info) => Ok(info),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to shut down; resolves once it acknowledges.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(0, &Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(response: &Response) -> io::Error {
    let what = match response {
        Response::Error(message) => format!("server error: {message}"),
        other => format!("unexpected response variant: {other:?}"),
    };
    io::Error::new(io::ErrorKind::InvalidData, what)
}
