//! # batmap-suite — umbrella crate
//!
//! Re-exports the whole reproduction workspace of *A New Data Layout
//! for Set Intersection on GPUs* (Amossen & Pagh, IPDPS 2011) so the
//! examples and integration tests can reach every crate through one
//! dependency, and downstream users can depend on a single name.
//!
//! * [`batmap`] — the data structure (the paper's contribution).
//! * [`gpu_sim`] — the GPU execution-model simulator substrate.
//! * [`fim`] — frequent-itemset-mining formats and baselines.
//! * [`datagen`] — workload generators.
//! * [`pairminer`] — the end-to-end mining pipeline.
//! * [`batmap_server`] — the snapshot-serving query service.
//! * [`hpcutil`] — hashing/timing/memory/stat utilities.
//!
//! The [`prelude`] re-exports the stable surface — engine options,
//! corpus building, mining configs, and the serving layer — in one
//! `use`.
//!
//! Start with `examples/quickstart.rs`, or:
//!
//! ```
//! use batmap_suite::batmap::{Batmap, BatmapParams};
//! use std::sync::Arc;
//!
//! let params = Arc::new(BatmapParams::new(1_000, 7));
//! let a = Batmap::build(params.clone(), &[1, 2, 3]).batmap;
//! let b = Batmap::build(params, &[2, 3, 4]).batmap;
//! assert_eq!(a.intersect_count(&b), 2);
//! ```

#![warn(missing_docs)]

pub use batmap;
pub use batmap_server;
pub use datagen;
pub use fim;
pub use gpu_sim;
pub use hpcutil;
pub use pairminer;

/// The stable one-`use` surface of the workspace: engine configuration
/// ([`batmap::EngineOptions`] and its knobs), corpus building and
/// persistence, the mining entry points, and the snapshot-serving
/// layer. Examples and downstream code should prefer
/// `use batmap_suite::prelude::*;` over reaching into individual
/// crates — everything here is what the workspace commits to keeping
/// spelling-stable.
pub mod prelude {
    pub use batmap::{
        Batmap, BatmapArena, BatmapParams, EngineOptions, KernelBackend, Parallelism, ReprPolicy,
    };
    pub use batmap_server::{
        Client, CorpusInfo, EngineConfig, MineSummary, Probe, QueryEngine, Request, Response,
        Server, ServerHandle,
    };
    pub use fim::{TransactionDb, VerticalDb};
    pub use pairminer::{
        mine, mine_preprocessed, preprocess_with, Engine, IngestError, LayeredCorpus,
        LevelwiseConfig, LevelwiseMiner, LevelwiseReport, MinerConfig, MiningReport, Preprocessed,
        WindowedMiner,
    };
}

/// Registers every fenced Rust block of the repository README as a
/// doctest, so `cargo test --doc` fails when a README example rots.
/// The struct itself compiles away outside doctest builds.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;
